// Geometry codec and GPP device tests.
#include <gtest/gtest.h>

#include <cmath>

#include "src/gpp/gpp.h"
#include "src/mem/memsys.h"
#include "src/soc/ports.h"

namespace majc {
namespace {

using gpp::BitReader;
using gpp::BitWriter;
using gpp::Mesh;

TEST(BitIo, RoundTripVariousWidths) {
  BitWriter w;
  w.put(0x5, 3);
  w.put(0x12345678, 32);
  w.put(0, 1);
  w.put(0x7FF, 11);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.get(3), 0x5u);
  EXPECT_EQ(r.get(32), 0x12345678u);
  EXPECT_EQ(r.get(1), 0u);
  EXPECT_EQ(r.get(11), 0x7FFu);
}

TEST(BitIo, TruncatedStreamFaults) {
  BitWriter w;
  w.put(0xAB, 8);
  const auto bytes = w.finish();
  BitReader r(bytes);
  r.get(8);
  EXPECT_THROW(r.get(1), Error);
}

class GeometryRoundTrip : public ::testing::TestWithParam<u32> {};

TEST_P(GeometryRoundTrip, PositionsWithinQuantizationError) {
  const Mesh mesh = gpp::make_test_mesh(GetParam(), /*seed=*/GetParam());
  const auto stream = gpp::compress(mesh);
  const Mesh out = gpp::decompress(stream);
  ASSERT_EQ(out.vertices.size(), mesh.vertices.size());
  const double tol = gpp::position_tolerance() * 1.01;
  for (std::size_t i = 0; i < mesh.vertices.size(); ++i) {
    const auto& a = mesh.vertices[i];
    const auto& b = out.vertices[i];
    EXPECT_NEAR(a.x, b.x, tol);
    EXPECT_NEAR(a.y, b.y, tol);
    EXPECT_NEAR(a.z, b.z, tol);
    EXPECT_NEAR(a.nx, b.nx, 0.01);
    EXPECT_NEAR(a.ny, b.ny, 0.01);
    EXPECT_NEAR(a.nz, b.nz, 0.01);
    EXPECT_EQ(a.r, b.r);
    EXPECT_EQ(a.g, b.g);
    EXPECT_EQ(a.b, b.b);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeometryRoundTrip,
                         ::testing::Values(3u, 10u, 64u, 257u, 1000u, 5000u));

TEST(Geometry, CompressionRatioIsSubstantial) {
  const Mesh mesh = gpp::make_test_mesh(4096, 7);
  const auto stream = gpp::compress(mesh);
  const double ratio = gpp::compression_ratio(mesh, stream);
  EXPECT_GT(ratio, 3.0) << "stream bytes: " << stream.size();
  EXPECT_LT(ratio, 20.0);
}

TEST(Geometry, EmptyMeshRoundTrips) {
  const Mesh empty;
  const auto stream = gpp::compress(empty);
  EXPECT_EQ(gpp::decompress(stream).vertices.size(), 0u);
  EXPECT_EQ(empty.triangle_count(), 0u);
}

TEST(Geometry, BadMagicFaults) {
  std::vector<u8> junk(16, 0xEE);
  EXPECT_THROW(gpp::decompress(junk), Error);
}

TEST(Gpp, BatchesCoverAllVerticesAndTriangles) {
  mem::MemorySystem ms({});
  gpp::Gpp g(ms);
  const Mesh mesh = gpp::make_test_mesh(1000, 3);
  const auto stream = gpp::compress(mesh);
  Mesh decoded;
  const auto batches = g.decode_and_distribute(stream, 0, decoded);
  u64 verts = 0, tris = 0;
  Cycle prev_ready = 0;
  for (const auto& b : batches) {
    verts += b.vertex_count;
    tris += b.triangle_count;
    EXPECT_GE(b.decoded_at, prev_ready);  // stream parses in order
    prev_ready = b.decoded_at;
  }
  EXPECT_EQ(verts, mesh.vertices.size());
  EXPECT_EQ(tris, mesh.triangle_count());
}

TEST(Gpp, LoadBalancerSplitsWorkEvenly) {
  mem::MemorySystem ms({});
  gpp::Gpp g(ms);
  const Mesh mesh = gpp::make_test_mesh(20000, 11);
  const auto stream = gpp::compress(mesh);
  const auto res = g.simulate_pipeline(stream, /*cpu_cycles_per_vertex=*/12.0);
  EXPECT_EQ(res.triangles, mesh.triangle_count());
  EXPECT_GT(res.balance(), 0.95);
  EXPECT_GT(res.mtris_per_sec(), 0.0);
}

TEST(Gpp, ThroughputScalesWithCpuSpeed) {
  mem::MemorySystem ms({});
  gpp::Gpp g(ms);
  const auto stream = gpp::compress(gpp::make_test_mesh(20000, 11));
  const auto slow = g.simulate_pipeline(stream, 40.0);
  const auto fast = g.simulate_pipeline(stream, 10.0);
  EXPECT_GT(fast.mtris_per_sec(), 2.0 * slow.mtris_per_sec());
}


TEST(Gpp, NupaFedPipelineExercisesTheFifo) {
  mem::MemorySystem ms({});
  sim::FlatMemory mem(1 << 20);
  soc::NupaPort nupa(ms, mem);
  gpp::Gpp g(ms);
  const auto stream = gpp::compress(gpp::make_test_mesh(8000, 21));
  const auto res = g.simulate_pipeline_from_nupa(nupa, stream, 14.0);
  EXPECT_EQ(res.vertices, 8000u);
  EXPECT_GT(nupa.fifo().total_pushed(), stream.size() - 1);
  EXPECT_EQ(nupa.fifo().occupancy(), 0u);  // fully drained
  // The FIFO path can only add latency relative to the direct path.
  mem::MemorySystem ms2({});
  gpp::Gpp g2(ms2);
  const auto direct = g2.simulate_pipeline(stream, 14.0);
  EXPECT_GE(res.cycles, direct.cycles);
  EXPECT_EQ(res.triangles, direct.triangles);
}

TEST(Gpp, NupaFedPipelineRespectsLineRate) {
  // A tiny parse rate makes ingest consumer-bound; a huge one makes the
  // UPA line rate (2 GB/s = 4 B/cycle) the floor.
  mem::MemorySystem ms({});
  sim::FlatMemory mem(1 << 20);
  const auto stream = gpp::compress(gpp::make_test_mesh(8000, 22));
  gpp::GppConfig fast;
  fast.decode_bytes_per_cycle = 1000.0;
  gpp::Gpp g(ms, fast);
  soc::NupaPort nupa(ms, mem);
  const auto res = g.simulate_pipeline_from_nupa(nupa, stream, 0.1);
  // Ingest floor: bytes / 4 per cycle.
  EXPECT_GE(res.cycles + 16, static_cast<Cycle>(stream.size() / 4.0));
}


class StripCounts : public ::testing::TestWithParam<u32> {};

TEST_P(StripCounts, RestartsSurviveCompression) {
  const Mesh mesh = gpp::make_test_mesh(999, 3, GetParam());
  const auto stream = gpp::compress(mesh);
  const Mesh out = gpp::decompress(stream);
  EXPECT_EQ(out.strip_starts, mesh.strip_starts);
  EXPECT_EQ(out.triangle_count(), mesh.triangle_count());
}

INSTANTIATE_TEST_SUITE_P(Strips, StripCounts,
                         ::testing::Values(1u, 2u, 7u, 50u));

TEST(Geometry, TriangleCountHonoursStrips) {
  // 10 vertices in 2 strips of 5: each strip closes 3 triangles.
  Mesh m = gpp::make_test_mesh(10, 1, 2);
  ASSERT_EQ(m.strip_starts, (std::vector<u32>{0, 5}));
  EXPECT_EQ(m.triangle_count(), 6u);
  EXPECT_EQ(m.triangles_before(0), 0u);
  EXPECT_EQ(m.triangles_before(3), 1u);
  EXPECT_EQ(m.triangles_before(5), 3u);
  EXPECT_EQ(m.triangles_before(7), 3u);  // new strip: first 2 close nothing
  EXPECT_EQ(m.triangles_before(8), 4u);
}

TEST(Gpp, BatchTrianglesRespectStrips) {
  mem::MemorySystem ms({});
  gpp::Gpp g(ms);
  const Mesh mesh = gpp::make_test_mesh(1000, 3, 9);
  const auto stream = gpp::compress(mesh);
  Mesh decoded;
  const auto batches = g.decode_and_distribute(stream, 0, decoded);
  u64 tris = 0;
  for (const auto& b : batches) tris += b.triangle_count;
  EXPECT_EQ(tris, mesh.triangle_count());
}

} // namespace
} // namespace majc
