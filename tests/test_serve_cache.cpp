// Kernel-cache coverage for the serving daemon (src/serve/cache.h).
//
// The cache must be a pure throughput feature: hit/miss accounting is
// exact, distinct (name, source) pairs never alias, and a cache-served
// kernel produces campaign bytes identical to a cold compile. The last
// test drives the counters through a live Server's stats frames so the
// daemon-visible numbers are pinned too.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>

#include "src/farm/campaign.h"
#include "src/farm/farm.h"
#include "src/kernels/table12.h"
#include "src/serve/cache.h"
#include "src/serve/client.h"
#include "src/serve/server.h"

using namespace majc;

namespace {

constexpr const char* kTinySource = "halt\n";
constexpr const char* kTinySource2 = "nop\nhalt\n";

TEST(KernelCacheKey, DistinctInputsDistinctKeys) {
  const u64 base = serve::kernel_cache_key("a", kTinySource);
  EXPECT_EQ(base, serve::kernel_cache_key("a", kTinySource));
  EXPECT_NE(base, serve::kernel_cache_key("a", kTinySource2));
  EXPECT_NE(base, serve::kernel_cache_key("b", kTinySource));
  // The NUL separator keeps the (name, source) boundary in the hash: moving
  // a byte across it must change the key.
  EXPECT_NE(serve::kernel_cache_key("ab", "c"),
            serve::kernel_cache_key("a", "bc"));
}

TEST(KernelCache, HitMissAccountingIsExact) {
  serve::KernelCache cache;
  bool hit = true;
  const auto k1 = cache.get_or_compile("tiny", kTinySource, &hit);
  ASSERT_NE(k1, nullptr);
  EXPECT_FALSE(hit);

  const auto k2 = cache.get_or_compile("tiny", kTinySource, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(k1.get(), k2.get());  // aliases, not a copy

  serve::KernelCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);

  // Same source under a different name must NOT alias (the name is
  // guest-visible in campaign JSON).
  const auto k3 = cache.get_or_compile("other", kTinySource, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(k1.get(), k3.get());

  // Different source under the same name: also a distinct entry.
  const auto k4 = cache.get_or_compile("tiny", kTinySource2, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(k1.get(), k4.get());

  s = cache.stats();
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 3u);
}

TEST(KernelCache, AssemblyFailureInsertsNothing) {
  serve::KernelCache cache;
  EXPECT_THROW(cache.get_or_compile("bad", "frobnicate g1\n"), std::exception);
  const serve::KernelCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.hits, 0u);
  // A later good compile under the same name is unaffected.
  bool hit = true;
  EXPECT_NE(cache.get_or_compile("bad", kTinySource, &hit), nullptr);
  EXPECT_FALSE(hit);
}

TEST(KernelCache, PreloadedTable12ServesNamedLookups) {
  serve::KernelCache cache;
  cache.preload_table12();
  serve::KernelCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 16u);
  EXPECT_EQ(s.misses, 16u);  // the preload compiles are real misses
  EXPECT_EQ(s.hits, 0u);

  for (const kernels::NamedKernel& nk : kernels::table12_kernels()) {
    const auto k = cache.get_named(nk.name);
    ASSERT_NE(k, nullptr) << nk.name;
    EXPECT_EQ(k->spec.name, nk.name);
  }
  EXPECT_EQ(cache.get_named("definitely_not_a_kernel"), nullptr);

  s = cache.stats();
  EXPECT_EQ(s.hits, 16u);
  EXPECT_EQ(s.misses, 16u);
}

TEST(KernelCache, CachedKernelRunsByteIdenticalToColdCompile) {
  // Cold: compile directly through an Engine from the spec.
  kernels::KernelSpec spec;
  spec.name = "tiny";
  spec.source = kTinySource;
  farm::Engine cold;
  cold.add_kernel(spec);

  // Cached: second get_or_compile returns the shared image.
  serve::KernelCache cache;
  cache.get_or_compile("tiny", kTinySource);
  bool hit = false;
  const auto cached_k = cache.get_or_compile("tiny", kTinySource, &hit);
  ASSERT_TRUE(hit);
  farm::Engine cached;
  cached.add_kernel(*cached_k);

  farm::MatrixSpec m;
  m.iterations = {0, 1};
  m.base_seed = 0x5eed50a4;
  m.mode_cycle = true;
  m.mode_functional = true;
  farm::submit_matrix(cold, m);
  farm::submit_matrix(cached, m);

  const std::string cold_json =
      farm::campaign_json(cold, cold.run(1u), m.base_seed);
  const std::string cached_json =
      farm::campaign_json(cached, cached.run(1u), m.base_seed);
  EXPECT_EQ(cold_json, cached_json);
}

TEST(KernelCache, ServerStatsExposeHitMissCounters) {
  serve::ServerConfig cfg;
  cfg.socket_path =
      "/tmp/majcd-cache-" + std::to_string(::getpid()) + ".sock";
  serve::Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  serve::Client c;
  ASSERT_TRUE(c.connect(cfg.socket_path, &err)) << err;
  serve::ServeStats s;
  ASSERT_TRUE(serve::fetch_stats(c, 1, &s, &err)) << err;
  EXPECT_EQ(s.cache_misses, 16u);  // table12 preload
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.cache_entries, 16u);

  // A named campaign hits once per requested kernel.
  serve::CampaignRequest req;
  req.id = 2;
  req.kernels = {"fir", "bitrev"};
  req.mode = "functional";
  serve::CampaignReply reply;
  ASSERT_TRUE(serve::run_campaign(c, req, &reply, &err)) << err;
  ASSERT_TRUE(reply.ok) << reply.error_code;
  ASSERT_TRUE(serve::fetch_stats(c, 3, &s, &err)) << err;
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_EQ(s.cache_misses, 16u);

  // An inline source: first request misses (compiles), the repeat hits, and
  // both serve identical bytes.
  serve::CampaignRequest src;
  src.id = 4;
  src.source_name = "tiny";
  src.source_text = kTinySource;
  src.mode = "functional";
  serve::CampaignReply first, second;
  ASSERT_TRUE(serve::run_campaign(c, src, &first, &err)) << err;
  ASSERT_TRUE(first.ok) << first.error_code;
  ASSERT_TRUE(serve::run_campaign(c, src, &second, &err)) << err;
  ASSERT_TRUE(second.ok) << second.error_code;
  EXPECT_EQ(first.campaign, second.campaign);

  ASSERT_TRUE(serve::fetch_stats(c, 5, &s, &err)) << err;
  EXPECT_EQ(s.cache_hits, 3u);
  EXPECT_EQ(s.cache_misses, 17u);
  EXPECT_EQ(s.cache_entries, 17u);

  server.stop();
}

} // namespace
