// Correctness + sanity-of-timing tests for the Table 2 DSP kernels.
#include <gtest/gtest.h>

#include "src/kernels/biquad.h"
#include "src/kernels/bitrev.h"
#include "src/kernels/cfir.h"
#include "src/kernels/fft.h"
#include "src/kernels/fir.h"
#include "src/kernels/lms.h"
#include "src/kernels/max_search.h"

namespace majc {
namespace {

using kernels::run_kernel;
using kernels::run_kernel_functional;

class FirSeeds : public ::testing::TestWithParam<u64> {};

TEST_P(FirSeeds, MatchesGoldenBitExactly) {
  const auto spec = kernels::make_fir_spec(GetParam());
  const auto run = run_kernel_functional(spec);
  EXPECT_TRUE(run.halted);
  EXPECT_TRUE(run.valid) << run.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FirSeeds, ::testing::Values(1u, 2u, 42u, 77u));

TEST(Fir, CycleCountInPaperBallpark) {
  const auto run = run_kernel(kernels::make_fir_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
  // Paper: 2757 cycles. Same order of magnitude is the reproduction target;
  // the exact number depends on scheduling (EXPERIMENTS.md records ours).
  EXPECT_GT(run.kernel_cycles, 1000u);
  EXPECT_LT(run.kernel_cycles, 6000u);
}

TEST(Fir, PerfectDcacheIsNotSlower) {
  TimingConfig perfect;
  perfect.perfect_dcache = true;
  perfect.perfect_icache = true;
  const auto fast = run_kernel(kernels::make_fir_spec(1), perfect);
  const auto real = run_kernel(kernels::make_fir_spec(1));
  EXPECT_TRUE(fast.valid);
  EXPECT_LE(fast.kernel_cycles, real.kernel_cycles);
}


class BiquadSeeds : public ::testing::TestWithParam<u64> {};

TEST_P(BiquadSeeds, SingleSampleMatchesGolden) {
  const auto run = run_kernel_functional(kernels::make_biquad_spec(GetParam()));
  EXPECT_TRUE(run.valid) << run.message;
}

TEST_P(BiquadSeeds, Iir64SamplesMatchesGolden) {
  const auto run = run_kernel_functional(kernels::make_iir_spec(GetParam()));
  EXPECT_TRUE(run.valid) << run.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BiquadSeeds, ::testing::Values(1u, 5u, 99u));

TEST(Biquad, CascadeLatencyNearPaper) {
  const auto run = run_kernel(kernels::make_biquad_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
  // Paper: 63 cycles for one sample through eight sections.
  EXPECT_GT(run.kernel_cycles, 30u);
  EXPECT_LT(run.kernel_cycles, 130u);
}

TEST(Iir, PerSampleCostNearPaper) {
  const auto run = run_kernel(kernels::make_iir_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
  // Paper: 2021 cycles for 64 samples (31.6 / sample).
  EXPECT_GT(run.kernel_cycles, 1200u);
  EXPECT_LT(run.kernel_cycles, 6000u);
}


TEST(Cfir, MatchesGoldenBitExactly) {
  const auto run = run_kernel_functional(kernels::make_cfir_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
}

TEST(Cfir, CycleCountNearPaper) {
  const auto run = run_kernel(kernels::make_cfir_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
  // Paper: 8643 cycles.
  EXPECT_GT(run.kernel_cycles, 5000u);
  EXPECT_LT(run.kernel_cycles, 16000u);
}

class LmsSeeds : public ::testing::TestWithParam<u64> {};

TEST_P(LmsSeeds, MatchesGoldenBitExactly) {
  const auto run = run_kernel_functional(kernels::make_lms_spec(GetParam()));
  EXPECT_TRUE(run.valid) << run.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LmsSeeds, ::testing::Values(1u, 3u, 17u));

TEST(Lms, SingleSampleCostNearPaper) {
  const auto run = run_kernel(kernels::make_lms_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
  // Paper: 64 cycles per adaptation step (steady state).
  EXPECT_GT(run.kernel_cycles, 30u);
  EXPECT_LT(run.kernel_cycles, 140u);
}

class MaxSeeds : public ::testing::TestWithParam<u64> {};

TEST_P(MaxSeeds, MatchesGolden) {
  const auto run = run_kernel_functional(kernels::make_max_search_spec(GetParam()));
  EXPECT_TRUE(run.valid) << run.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxSeeds,
                         ::testing::Values(1u, 2u, 3u, 4u, 50u, 123u));

TEST(MaxSearch, CycleCountNearPaper) {
  const auto run = run_kernel(kernels::make_max_search_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
  // Paper: 126 cycles for 40 elements.
  EXPECT_GT(run.kernel_cycles, 80u);
  EXPECT_LT(run.kernel_cycles, 260u);
}


TEST(Fft, Radix2MatchesReferenceDft) {
  const auto run = run_kernel_functional(kernels::make_fft_radix2_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
}

TEST(Fft, Radix4MatchesReferenceDft) {
  const auto run = run_kernel_functional(kernels::make_fft_radix4_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
}

TEST(Fft, Radix4BeatsRadix2AsPaperClaims) {
  const auto r2 = run_kernel(kernels::make_fft_radix2_spec(1));
  const auto r4 = run_kernel(kernels::make_fft_radix4_spec(1));
  EXPECT_TRUE(r2.valid) << r2.message;
  EXPECT_TRUE(r4.valid) << r4.message;
  // The paper's stated reason MAJC's register file matters: radix-4 is
  // the compute-efficient choice and must win.
  EXPECT_LT(r4.kernel_cycles, r2.kernel_cycles);
}

TEST(Bitrev, PermutationIsExact) {
  const auto run = run_kernel_functional(kernels::make_bitrev_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
}

TEST(Bitrev, CycleCountNearPaper) {
  const auto run = run_kernel(kernels::make_bitrev_spec(1));
  EXPECT_TRUE(run.valid) << run.message;
  // Paper: 2484 cycles for the 1024-point reorder.
  EXPECT_GT(run.kernel_cycles, 1500u);
  EXPECT_LT(run.kernel_cycles, 5000u);
}

} // namespace
} // namespace majc
