// Assembler tests: lexing, directives, labels, expressions, pseudo-ops,
// slot validation and diagnostics.
#include <gtest/gtest.h>

#include <cstring>

#include "src/masm/assembler.h"
#include "src/masm/lexer.h"

namespace majc {
namespace {

using masm::assemble;
using masm::assemble_or_throw;
using masm::Diagnostic;

std::vector<Diagnostic> expect_failure(const char* src) {
  std::vector<Diagnostic> diags;
  EXPECT_FALSE(assemble(src, diags).has_value());
  EXPECT_FALSE(diags.empty());
  return diags;
}

TEST(Lexer, TokenKinds) {
  std::vector<masm::Token> toks;
  std::string err;
  ASSERT_TRUE(masm::lex_line("add g1, g2, g3 | ldwi g4, g5, -12 ;; # c",
                             toks, err));
  // idents, commas, pipe, number, end
  EXPECT_EQ(toks.back().kind, masm::TokKind::kEnd);
  ASSERT_GE(toks.size(), 12u);
  EXPECT_EQ(toks[0].text, "add");
}

TEST(Lexer, NumbersAndFloats) {
  std::vector<masm::Token> toks;
  std::string err;
  ASSERT_TRUE(masm::lex_line(".float 1.5, -2e3, 0x1F, -42", toks, err));
  EXPECT_EQ(toks[0].kind, masm::TokKind::kDirective);
  EXPECT_DOUBLE_EQ(toks[1].fval, 1.5);
  EXPECT_DOUBLE_EQ(toks[3].fval, -2000.0);
  EXPECT_EQ(toks[5].ival, 0x1F);
  EXPECT_EQ(toks[7].ival, -42);
}

TEST(Lexer, SingleSemicolonRejected) {
  std::vector<masm::Token> toks;
  std::string err;
  EXPECT_FALSE(masm::lex_line("add g1, g2, g3 ; comment", toks, err));
}

TEST(Assembler, DataDirectivesAndAlignment) {
  const auto img = assemble_or_throw(R"(
    .data
  a: .byte 1, 2, 3
    .align 4
  b: .word 0x11223344
  c: .half -1
    .align 8
  d: .double 2.5
  e: .space 3
  f: .byte 9
    .code
    halt
  )");
  EXPECT_EQ(img.symbol("a"), masm::Image::kDefaultDataBase);
  EXPECT_EQ(img.symbol("b") % 4, 0u);
  EXPECT_EQ(img.symbol("d") % 8, 0u);
  EXPECT_EQ(img.symbol("f"), img.symbol("e") + 3);
  EXPECT_EQ(img.data[0], 1);
  const std::size_t boff = img.symbol("b") - masm::Image::kDefaultDataBase;
  EXPECT_EQ(img.data[boff], 0x44);  // little-endian
}

TEST(Assembler, WordDirectiveTakesSymbols) {
  const auto img = assemble_or_throw(R"(
    .data
  tbl: .word target, 7
    .code
  target:
    halt
  )");
  const std::size_t off = img.symbol("tbl") - masm::Image::kDefaultDataBase;
  u32 v;
  std::memcpy(&v, img.data.data() + off, 4);
  EXPECT_EQ(v, img.symbol("target"));
}

TEST(Assembler, EntryDirective) {
  const auto img = assemble_or_throw(R"(
    .entry start
    halt
  start:
    halt
  )");
  EXPECT_EQ(img.entry, img.symbol("start"));
}

TEST(Assembler, HiLoExpressions) {
  const auto img = assemble_or_throw(R"(
    .data
  buf: .space 16
    .code
    sethi g3, %hi(buf+4)
    orlo g3, %lo(buf+4)
    halt
  )");
  EXPECT_EQ(img.code.size(), 3u);
}

TEST(Assembler, PseudoOps) {
  const auto img = assemble_or_throw(R"(
    li g3, -5
    mov g4, g3
    not g5, g4
    b skip
    nop
  skip:
    ret
  )");
  EXPECT_GE(img.code.size(), 6u);
}

TEST(Assembler, SuffixesSelectSubFields) {
  const auto img = assemble_or_throw(
      "ldw.nc g3, g4, g5 | padd.s l0, g3, g3 | psub.u l1, g3, g3 | "
      "pmulh.b l2, g3, g3\nhalt\n");
  // sub fields: 1 (non-cached), 1 (signed), 2 (unsigned), 3 (byte)
  EXPECT_EQ(img.code[0] & 3u, 1u);
  EXPECT_EQ(img.code[1] & 3u, 1u);
  EXPECT_EQ(img.code[2] & 3u, 2u);
  EXPECT_EQ(img.code[3] & 3u, 3u);
}

TEST(Assembler, DiagnosticsCarryLineNumbers) {
  const auto diags = expect_failure("nop\nbogus g1, g2\nnop\n");
  EXPECT_EQ(diags[0].line, 2u);
}

TEST(Assembler, UnknownLabelReported) {
  const auto diags = expect_failure("bnz g3, nowhere\nhalt\n");
  EXPECT_NE(diags[0].message.find("nowhere"), std::string::npos);
}

TEST(Assembler, DuplicateLabelReported) {
  expect_failure("x: nop\nx: nop\nhalt\n");
}

TEST(Assembler, WrongSlotReported) {
  // Memory op outside slot 0.
  expect_failure("nop | ldwi g3, g4, 0\nhalt\n");
  // Five slots.
  expect_failure("nop | nop | nop | nop | nop\nhalt\n");
  // FU1-3 op in slot 0.
  expect_failure("pick g3, g4, g5\nhalt\n");
}

TEST(Assembler, RegisterRangeReported) {
  expect_failure("setlo g96, 1\nhalt\n");
  expect_failure("nop | setlo l32, 1\nhalt\n");
}

TEST(Assembler, BranchDisplacementRangeChecked) {
  // Build a program whose branch target is ~40000 words away: exceeds the
  // 16-bit word displacement.
  std::string src = "b far\n";
  for (int i = 0; i < 40000; ++i) src += "nop\n";
  src += "far: halt\n";
  std::vector<Diagnostic> diags;
  EXPECT_FALSE(assemble(src, diags).has_value());
}

TEST(Assembler, ImmediateRangeReported) {
  expect_failure("addi g3, g4, 1000\nhalt\n");
}

TEST(Assembler, InstructionsInDataSectionRejected) {
  expect_failure(".data\nadd g3, g4, g5\n");
}

TEST(Assembler, CollectsMultipleDiagnostics) {
  const auto diags = expect_failure("bogus1\nbogus2\nbogus3\n");
  EXPECT_GE(diags.size(), 3u);
}

TEST(Assembler, EmptyAndCommentOnlyProgram) {
  const auto img = assemble_or_throw("# nothing\n\n   \nhalt\n");
  EXPECT_EQ(img.code.size(), 1u);
}


TEST(Assembler, AsciiDirectives) {
  const auto img = assemble_or_throw(R"(
    .data
  msg: .asciz "Hi\n"
  raw: .ascii "AB"
  end: .byte 7
    .code
    halt
  )");
  const std::size_t m = img.symbol("msg") - masm::Image::kDefaultDataBase;
  EXPECT_EQ(img.data[m], 'H');
  EXPECT_EQ(img.data[m + 1], 'i');
  EXPECT_EQ(img.data[m + 2], '\n');
  EXPECT_EQ(img.data[m + 3], 0);
  const std::size_t r = img.symbol("raw") - masm::Image::kDefaultDataBase;
  EXPECT_EQ(img.data[r], 'A');
  EXPECT_EQ(img.symbol("end") - img.symbol("raw"), 2u);
}

TEST(Assembler, BadStringsRejected) {
  expect_failure(".data\nx: .asciz \"unterminated\n.code\nhalt\n");
  expect_failure(".data\nx: .asciz 5\n.code\nhalt\n");
}

} // namespace
} // namespace majc
