// End-to-end tests of the instruction-accurate simulator: assemble small
// programs, run them, check architectural results and console output.
#include <gtest/gtest.h>

#include "src/masm/assembler.h"
#include "src/sim/functional_sim.h"

namespace majc {
namespace {

using masm::assemble_or_throw;
using sim::FunctionalSim;

u32 run_and_read_g(const char* src, u32 greg, sim::RunResult* out = nullptr) {
  FunctionalSim s(assemble_or_throw(src));
  const auto res = s.run();
  EXPECT_TRUE(res.halted);
  if (out) *out = res;
  return s.state().read(static_cast<isa::PhysReg>(greg));
}

TEST(FunctionalSim, HaltsImmediately) {
  FunctionalSim s(assemble_or_throw("halt\n"));
  const auto res = s.run();
  EXPECT_TRUE(res.halted);
  EXPECT_EQ(res.packets, 1u);
}

TEST(FunctionalSim, SetloAndAdd) {
  const char* src = R"(
    setlo g3, 40
    setlo g4, 2
    add g5, g3, g4
    halt
  )";
  EXPECT_EQ(run_and_read_g(src, 5), 42u);
}

TEST(FunctionalSim, WideConstantsViaSethiOrlo) {
  const char* src = R"(
    sethi g3, 0x1234
    orlo g3, 0x5678
    halt
  )";
  EXPECT_EQ(run_and_read_g(src, 3), 0x12345678u);
}

TEST(FunctionalSim, PacketParallelReadSemantics) {
  // Both slots read the pre-packet value of g3: the swap idiom works.
  const char* src = R"(
    setlo g3, 7
    setlo g4, 9
    mov g3, g4 | mov g4, g3
    halt
  )";
  FunctionalSim s(assemble_or_throw(src));
  s.run();
  EXPECT_EQ(s.state().read(3), 9u);
  EXPECT_EQ(s.state().read(4), 7u);
}

TEST(FunctionalSim, LoopWithBranch) {
  // Sum 1..10 with a down-counting loop.
  const char* src = R"(
    setlo g3, 10      # i
    setlo g4, 0       # sum
  loop:
    add g4, g4, g3
    addi g3, g3, -1
    bnz g3, loop
    halt
  )";
  EXPECT_EQ(run_and_read_g(src, 4), 55u);
}

TEST(FunctionalSim, CallAndReturn) {
  const char* src = R"(
    setlo g3, 5
    call double_it
    add g5, g4, g0     # g5 = result
    halt
  double_it:
    add g4, g3, g3
    ret
  )";
  EXPECT_EQ(run_and_read_g(src, 5), 10u);
}

TEST(FunctionalSim, DataSectionLoadStore) {
  const char* src = R"(
    .data
  vals: .word 11, 22, 33
  out:  .space 4
    .code
    sethi g3, %hi(vals)
    orlo g3, %lo(vals)
    ldwi g4, g3, 0
    ldwi g5, g3, 4
    ldwi g6, g3, 8
    add g7, g4, g5
    add g7, g7, g6
    sethi g8, %hi(out)
    orlo g8, %lo(out)
    stwi g7, g8, 0
    halt
  )";
  FunctionalSim s(assemble_or_throw(src));
  s.run();
  EXPECT_EQ(s.state().read(7), 66u);
  const Addr out = s.program().image().symbol("out");
  EXPECT_EQ(s.memory().read_u32(out), 66u);
}

TEST(FunctionalSim, ConsoleTrapOutput) {
  const char* src = R"(
    setlo g3, 123
    trap g0, g3, 0
    halt
  )";
  FunctionalSim s(assemble_or_throw(src));
  s.run();
  EXPECT_EQ(s.console(), "123\n");
}

TEST(FunctionalSim, LocalRegistersArePerFu) {
  // Write l0 on FU1 and FU2 in one packet; they are distinct registers.
  const char* src = R"(
    nop | setlo l0, 5 | setlo l0, 6
    nop | add g3, l0, g0 | add g4, l0, g0
    halt
  )";
  FunctionalSim s(assemble_or_throw(src));
  s.run();
  EXPECT_EQ(s.state().read(3), 5u);
  EXPECT_EQ(s.state().read(4), 6u);
}

TEST(FunctionalSim, GlobalZeroRegisterIsImmutable) {
  const char* src = R"(
    setlo g0, 99
    add g3, g0, g0
    halt
  )";
  EXPECT_EQ(run_and_read_g(src, 3), 0u);
}

TEST(FunctionalSim, PairLoadStoreRoundTrip) {
  const char* src = R"(
    .data
  v: .long 0x1122334455667788
  o: .space 8
    .code
    sethi g3, %hi(v)
    orlo g3, %lo(v)
    ldli g4, g3, 0        # g4 = high word, g5 = low word
    sethi g6, %hi(o)
    orlo g6, %lo(o)
    stli g4, g6, 0
    halt
  )";
  FunctionalSim s(assemble_or_throw(src));
  s.run();
  EXPECT_EQ(s.state().read(4), 0x11223344u);
  EXPECT_EQ(s.state().read(5), 0x55667788u);
  EXPECT_EQ(s.memory().read_u64(s.program().image().symbol("o")),
            0x1122334455667788ull);
}

TEST(FunctionalSim, GroupLoadFillsEightRegisters) {
  const char* src = R"(
    .data
    .align 32
  v: .word 1, 2, 3, 4, 5, 6, 7, 8
    .code
    sethi g3, %hi(v)
    orlo g3, %lo(v)
    ldgi g8, g3, 0
    halt
  )";
  FunctionalSim s(assemble_or_throw(src));
  s.run();
  for (u32 i = 0; i < 8; ++i) EXPECT_EQ(s.state().read(8 + i), i + 1);
}

TEST(FunctionalSim, GettickCountsPackets) {
  const char* src = R"(
    nop
    nop
    gettick g3
    halt
  )";
  // Two packets have executed when gettick runs.
  EXPECT_EQ(run_and_read_g(src, 3), 2u);
}

TEST(FunctionalSim, JumpToNonPacketBoundaryFaults) {
  const char* src = R"(
    setlo g3, 2
    jmpl g4, g3
    halt
  )";
  FunctionalSim s(assemble_or_throw(src));
  const sim::RunResult res = s.run();
  EXPECT_EQ(res.reason, TerminationReason::kTrap);
  EXPECT_EQ(res.trap.code, TrapCause::kIllegalPacket);
  EXPECT_FALSE(trap_report(res.trap, s.program(), s.state()).empty());
}

} // namespace
} // namespace majc
