// Validation of the golden models themselves: the fixed-point reference
// transforms must agree with straightforward double-precision math to
// quantization accuracy, so "kernel == golden" tests actually pin the
// kernels to the right function.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/kernels/convolve.h"
#include "src/kernels/dct_common.h"
#include "src/kernels/idct.h"
#include "src/kernels/vld.h"
#include "src/support/rng.h"

namespace majc {
namespace {

/// Double precision 2-D IDCT.
void idct_double(const i16* in, double* out) {
  auto c = [](int u) { return u == 0 ? 1.0 / std::sqrt(2.0) : 1.0; };
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double acc = 0;
      for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
          acc += 0.25 * c(u) * c(v) * in[u * 8 + v] *
                 std::cos((2 * y + 1) * u * std::numbers::pi / 16.0) *
                 std::cos((2 * x + 1) * v * std::numbers::pi / 16.0);
        }
      }
      out[y * 8 + x] = acc;
    }
  }
}

class IdctAccuracy : public ::testing::TestWithParam<u64> {};

TEST_P(IdctAccuracy, FixedPointTracksDoublePrecision) {
  SplitMix64 rng(GetParam());
  i16 in[64];
  in[0] = static_cast<i16>(rng.next_range(-800, 800));
  for (int i = 1; i < 64; ++i) in[i] = static_cast<i16>(rng.next_range(-150, 150));

  i16 fixed[64];
  kernels::idct8x8_reference(in, fixed);
  double exact[64];
  idct_double(in, exact);
  for (int i = 0; i < 64; ++i) {
    // Two 11-bit-scaled passes: error stays within a few LSBs.
    EXPECT_NEAR(static_cast<double>(fixed[i]), exact[i], 3.0) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdctAccuracy, ::testing::Values(1u, 2u, 3u, 9u));

TEST(DctMatrices, ForwardTimesInverseIsNearIdentity) {
  const auto f = kernels::fdct_matrix();
  const auto inv = kernels::idct_matrix();
  const double scale = 1 << kernels::kDctShift;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      double acc = 0;
      for (int k = 0; k < 8; ++k) {
        acc += (inv[i * 8 + k] / scale) * (f[k * 8 + j] / scale);
      }
      EXPECT_NEAR(acc, i == j ? 1.0 : 0.0, 2e-3) << i << "," << j;
    }
  }
}

TEST(ConvolveReference, MatchesDirect2dConvolution) {
  // The separable golden equals the direct 5x5 form on a small crop.
  std::vector<i16> img(kernels::kConvW * kernels::kConvH, 0);
  SplitMix64 rng(5);
  for (auto& p : img) p = static_cast<i16>(rng.next_below(256));
  std::vector<i16> out;
  kernels::convolve5x5_reference(img, out);
  for (u32 y = 0; y < 4; ++y) {
    for (u32 x = 0; x < 16; ++x) {
      i32 direct = 0;
      for (u32 r = 0; r < 5; ++r) {
        for (u32 k = 0; k < 5; ++k) {
          direct += kernels::kConvCoef[r] * kernels::kConvCoef[k] *
                    img[(y + r) * kernels::kConvW + x + k];
        }
      }
      EXPECT_EQ(out[y * kernels::kConvOutW + x], static_cast<i16>(direct));
    }
  }
}

TEST(VldReference, EncodeDecodeRoundTripsSymbols) {
  const auto syms = kernels::make_vld_symbols(33);
  const auto stream = kernels::encode_vld_stream(syms);
  // Decoding the whole stream touches each encoded (run, level) exactly;
  // verify via the final block against an independent in-place decode.
  i16 block[64];
  kernels::vld_reference(stream, kernels::kVldSymbols, block);
  i16 expect[64] = {};
  u32 idx = 63;
  for (const auto& s : syms) {
    idx = (idx + s.run + 1) & 63u;
    expect[kernels::vld_zigzag_table()[idx]] =
        static_cast<i16>(s.level * kernels::kVldQscale);
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ(block[i], expect[i]) << i;
}

} // namespace
} // namespace majc
