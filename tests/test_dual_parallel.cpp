// Thread-level parallelism across the two CPUs (paper §5: "in several of
// the applications it is possible to obtain thread level parallelism to
// effectively use both the CPUs"): a data-parallel workload split by
// GETCPU runs close to twice as fast as the single-CPU version, and the
// shared D$ + atomics combine the results correctly.
#include <gtest/gtest.h>

#include "src/masm/assembler.h"
#include "src/soc/chip.h"
#include "src/support/rng.h"

namespace majc {
namespace {

/// Sum-of-products over `total` elements; each participating CPU takes an
/// interleaved-block half when `split`, and CPU1 exits early when not.
std::string sop_program(u32 total, bool split) {
  std::string src = R"(
    .data
  partial: .space 8
  done:    .space 4
  result:  .space 4
    .code
    getcpu g20
  )";
  if (!split) {
    src += "    bnz g20, finish_other\n";
  }
  // Region: CPU c starts at base + c*half*4 (contiguous halves in
  // different DRDRAM banks once the stride passes 2 KB).
  const u32 per_cpu = split ? total / 2 : total;
  src += R"(
    sethi g3, 0x20
    orlo g3, 0
  )";
  if (split) {
    src += "    slli g21, g20, " +
           std::to_string(31 - __builtin_clz(per_cpu * 4)) + "\n";
    src += "    add g3, g3, g21\n";
  }
  src += "    sethi g7, " + std::to_string(per_cpu >> 16) + "\n";
  src += "    orlo g7, " + std::to_string(per_cpu & 0xFFFF) + "\n";
  src += R"(
    setlo g6, 0
  lp:
    ldwi g4, g3, 0
    nop | madd g6, g4, g4
    addi g3, g3, 4
    addi g7, g7, -1
    bnz g7, lp
    # publish this CPU's partial sum
    sethi g8, %hi(partial)
    orlo g8, %lo(partial)
    slli g9, g20, 2
    stw g6, g8, g9
    membar
    halt
  finish_other:
    halt
  )";
  return src;
}

u32 reference_sum(sim::MemoryBus& mem, Addr base, u32 total) {
  u32 acc = 0;
  for (u32 i = 0; i < total; ++i) {
    const u32 v = mem.read_u32(base + 4 * i);
    acc += v * v;
  }
  return acc;
}

void fill(soc::Majc5200& chip, u32 total) {
  SplitMix64 rng(404);
  for (u32 i = 0; i < total; ++i) {
    chip.memory().write_u32(0x200000 + 4 * i, rng.next_below(1000));
  }
}

TEST(DualCpu, SplitWorkloadComputesCorrectPartials) {
  constexpr u32 kTotal = 8192;
  soc::Majc5200 chip(masm::assemble_or_throw(sop_program(kTotal, true)));
  fill(chip, kTotal);
  const auto res = chip.run();
  ASSERT_TRUE(res.all_halted);
  const Addr part = chip.program().image().symbol("partial");
  const u32 p0 = chip.memory().read_u32(part);
  const u32 p1 = chip.memory().read_u32(part + 4);
  EXPECT_EQ(p0 + p1, reference_sum(chip.memory(), 0x200000, kTotal));
  EXPECT_EQ(p0, reference_sum(chip.memory(), 0x200000, kTotal / 2));
}

TEST(DualCpu, ThreadLevelParallelismSpeedsUp) {
  constexpr u32 kTotal = 8192;
  soc::Majc5200 single(masm::assemble_or_throw(sop_program(kTotal, false)));
  fill(single, kTotal);
  const auto r1 = single.run();
  ASSERT_TRUE(r1.all_halted);

  soc::Majc5200 dual(masm::assemble_or_throw(sop_program(kTotal, true)));
  fill(dual, kTotal);
  const auto r2 = dual.run();
  ASSERT_TRUE(r2.all_halted);

  const double speedup =
      static_cast<double>(r1.cycles) / static_cast<double>(r2.cycles);
  EXPECT_GT(speedup, 1.5);
  EXPECT_LE(speedup, 2.1);
}

TEST(DualCpu, BothCpusShareOneDataCacheCoherently) {
  // CPU0 writes a line, CPU1 reads it back through the shared D$ with no
  // explicit flushing — the zero-overhead communication of paper §3.2.
  const char* src = R"(
    .data
  box:  .space 4
  flag: .space 4
  out:  .space 4
    .code
    sethi g3, %hi(box)
    orlo g3, %lo(box)
    sethi g4, %hi(flag)
    orlo g4, %lo(flag)
    getcpu g20
    bnz g20, reader
    setlo g5, 31415
    stwi g5, g3, 0
    membar
    setlo g6, 1
    stwi g6, g4, 0
    halt
  reader:
  wait:
    ldwi g7, g4, 0
    bz g7, wait
    ldwi g8, g3, 0
    sethi g9, %hi(out)
    orlo g9, %lo(out)
    stwi g8, g9, 0
    halt
  )";
  soc::Majc5200 chip(masm::assemble_or_throw(src));
  const auto res = chip.run(500000);
  ASSERT_TRUE(res.all_halted);
  EXPECT_EQ(chip.memory().read_u32(chip.program().image().symbol("out")),
            31415u);
}

} // namespace
} // namespace majc
