// Vertical microthreading (MAJC §2): multiple architectural contexts per
// CPU with rapid switch on long-latency stalls. Correctness (both contexts
// complete, per-thread registers isolated) and the latency-hiding effect.
#include <gtest/gtest.h>

#include "src/cpu/cycle_cpu.h"
#include "src/masm/assembler.h"

namespace majc {
namespace {

std::string walker(u32 iterations) {
  // Each context sums a strided walk over its own 256 KB region.
  return R"(
    .data
  results: .space 16
    .code
    gettid g20
    sethi g3, 0x40
    orlo g3, 0
    slli g21, g20, 18
    slli g22, g20, 11
    add g3, g3, g21
    add g3, g3, g22
    setlo g6, 0
    sethi g7, )" +
         std::to_string(iterations >> 16) + "\norlo g7, " +
         std::to_string(iterations & 0xFFFF) + R"(
  lp:
    ldwi g4, g3, 0
    add g6, g6, g4
    addi g3, g3, 32
    addi g7, g7, -1
    bnz g7, lp
    sethi g8, %hi(results)
    orlo g8, %lo(results)
    slli g9, g20, 2
    add g8, g8, g9
    addi g6, g6, 1       # nonzero marker even for all-zero memory
    stw g6, g8, g0
    halt
  )";
}

TEST(MicroThreading, BothContextsRunAndHalt) {
  TimingConfig cfg;
  cfg.hw_threads = 2;
  cpu::CycleSim sim(masm::assemble_or_throw(walker(64)), cfg);
  const auto res = sim.run();
  EXPECT_TRUE(res.halted);
  const Addr r = sim.program().image().symbol("results");
  EXPECT_NE(sim.memory().read_u32(r), 0u);
  EXPECT_NE(sim.memory().read_u32(r + 4), 0u);
  EXPECT_GT(sim.cpu().stats().thread_switches, 0u);
}

TEST(MicroThreading, RegistersArePerContext) {
  TimingConfig cfg;
  cfg.hw_threads = 2;
  const char* src = R"(
    .data
  out: .space 8
    .code
    gettid g20
    setlo g5, 100
    add g5, g5, g20      # thread-private value
    sethi g8, %hi(out)
    orlo g8, %lo(out)
    slli g9, g20, 2
    stw g5, g8, g9
    halt
  )";
  cpu::CycleSim sim(masm::assemble_or_throw(src), cfg);
  sim.run();
  const Addr out = sim.program().image().symbol("out");
  EXPECT_EQ(sim.memory().read_u32(out), 100u);
  EXPECT_EQ(sim.memory().read_u32(out + 4), 101u);
}

TEST(MicroThreading, HidesMemoryLatency) {
  // Equal total work: one context walking 4096 lines vs two contexts
  // walking 2048 each (disjoint regions / banks). The switched version
  // overlaps miss latency with the other context's compute.
  TimingConfig one;
  one.hw_threads = 1;
  cpu::CycleSim s1(masm::assemble_or_throw(walker(4096)), one);
  const auto r1 = s1.run();

  TimingConfig two;
  two.hw_threads = 2;
  cpu::CycleSim s2(masm::assemble_or_throw(walker(2048)), two);
  const auto r2 = s2.run();

  EXPECT_TRUE(r1.halted);
  EXPECT_TRUE(r2.halted);
  EXPECT_LT(r2.cycles, r1.cycles);
  EXPECT_GT(static_cast<double>(r1.cycles) / static_cast<double>(r2.cycles),
            1.15);
}

TEST(MicroThreading, SingleThreadNeverSwitches) {
  cpu::CycleSim sim(masm::assemble_or_throw(walker(128)), TimingConfig{});
  sim.run();
  EXPECT_EQ(sim.cpu().stats().thread_switches, 0u);
  EXPECT_EQ(sim.cpu().hw_threads(), 1u);
}

TEST(MicroThreading, ResultsMatchFunctionalPerThread) {
  // The 2-context cycle run computes the same values a functional run of
  // each context computes (gettid-dispatched).
  TimingConfig cfg;
  cfg.hw_threads = 2;
  cpu::CycleSim sim(masm::assemble_or_throw(walker(32)), cfg);
  sim.run();
  // The walked memory is zero-filled, so each context's sum is the marker.
  const Addr r = sim.program().image().symbol("results");
  EXPECT_EQ(sim.memory().read_u32(r), 1u);
  EXPECT_EQ(sim.memory().read_u32(r + 4), 1u);
}

} // namespace
} // namespace majc
