// RAS model tests: architected traps across simulators, seeded fault
// injection (DRAM ECC, cache fill parity, crossbar grants), the livelock
// watchdog, and cache way-disable degradation.
#include <gtest/gtest.h>

#include "src/cpu/cycle_cpu.h"
#include "src/masm/assembler.h"
#include "src/soc/chip.h"
#include "src/support/fault.h"

namespace majc {
namespace {

using masm::assemble_or_throw;

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlan, InertWhenAllRatesZero) {
  const FaultPlan plan{FaultConfig{}};
  EXPECT_FALSE(plan.enabled());
  for (Addr line = 0; line < 4096; line += 32) {
    EXPECT_EQ(plan.dram_fault(line), FaultPlan::DramFault::kNone);
    EXPECT_FALSE(plan.fill_corrupted(line, line));
    EXPECT_EQ(plan.grant_delay(line), 0u);
    EXPECT_FALSE(plan.grant_dropped(line));
  }
}

TEST(FaultPlan, DeterministicAcrossInstances) {
  FaultConfig cfg;
  cfg.dram_correctable_rate = 0.01;
  cfg.fill_parity_rate = 0.05;
  cfg.xbar_delay_rate = 0.05;
  const FaultPlan a{cfg};
  const FaultPlan b{cfg};
  EXPECT_TRUE(a.enabled());
  for (Addr line = 0; line < 1u << 16; line += 32) {
    EXPECT_EQ(a.dram_fault(line), b.dram_fault(line));
    EXPECT_EQ(a.fill_corrupted(line, 7), b.fill_corrupted(line, 7));
    EXPECT_EQ(a.grant_delay(line), b.grant_delay(line));
  }
}

TEST(FaultPlan, RaisingCorrectableRateNeverMovesUncorrectableLines) {
  // Uncorrectable faults claim the low hash slice, so turning correctable
  // errors up cannot reclassify a machine-check line as correctable.
  FaultConfig lo;
  lo.dram_uncorrectable_rate = 0.001;
  FaultConfig hi = lo;
  hi.dram_correctable_rate = 0.2;
  const FaultPlan a{lo};
  const FaultPlan b{hi};
  u64 uncorrectable = 0;
  for (Addr line = 0; line < 1u << 20; line += 32) {
    const bool mc_a = a.dram_fault(line) == FaultPlan::DramFault::kUncorrectable;
    const bool mc_b = b.dram_fault(line) == FaultPlan::DramFault::kUncorrectable;
    EXPECT_EQ(mc_a, mc_b);
    uncorrectable += mc_a;
  }
  EXPECT_GT(uncorrectable, 0u);  // the rate actually selects some lines
}

// ------------------------------------------------------------------- Traps

TEST(Faults, CycleSimDeliversMisalignedTrap) {
  cpu::CycleSim sim(assemble_or_throw(R"(
    setlo g3, 4097
    ldwi g4, g3, 0
    halt
  )"));
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kTrap);
  EXPECT_EQ(res.trap.code, TrapCause::kMisaligned);
  EXPECT_EQ(res.trap.cpu, 0u);
  EXPECT_EQ(res.trap.pc, sim.program().image().entry + isa::kInstrBytes);
  EXPECT_FALSE(res.halted);
}

TEST(Faults, ChipTrapNamesTheFaultingCpu) {
  // CPU0 halts cleanly; CPU1 performs a misaligned load. The chip stops on
  // the trap and the report carries cpu=1 plus a dual-CPU state dump.
  const char* src = R"(
    getcpu g20
    bnz g20, cpu1
    halt
  cpu1:
    setlo g3, 4097
    ldwi g4, g3, 0
    halt
  )";
  soc::Majc5200 chip(assemble_or_throw(src));
  const auto res = chip.run();
  EXPECT_EQ(res.reason, TerminationReason::kTrap);
  EXPECT_EQ(res.trap.code, TrapCause::kMisaligned);
  EXPECT_EQ(res.trap.cpu, 1u);
  EXPECT_FALSE(res.all_halted);
  EXPECT_NE(res.dump.find("architected trap"), std::string::npos);
  EXPECT_NE(res.dump.find("cpu1:"), std::string::npos);
}

TEST(Faults, DivideByZeroTrapsOnlyWhenArmed) {
  const char* src = R"(
    setlo g3, 7
    setlo g4, 0
    div g5, g3, g4
    halt
  )";
  {
    sim::FunctionalSim s(assemble_or_throw(src));
    const auto res = s.run();  // default: total semantics, div/0 = 0
    EXPECT_EQ(res.reason, TerminationReason::kHalted);
    EXPECT_EQ(s.state().read(5), 0u);
  }
  {
    sim::FunctionalSim s(assemble_or_throw(src));
    s.set_trap_div_zero(true);
    const auto res = s.run();
    EXPECT_EQ(res.reason, TerminationReason::kTrap);
    EXPECT_EQ(res.trap.code, TrapCause::kDivideByZero);
  }
}

// ---------------------------------------------------- guest trap delivery

// Installs a handler, takes a misaligned load, and resumes at the faulting
// packet's fall-through via RETT. g5 captures the cause read back with MFTR;
// g9 proves execution continued past the faulting packet.
constexpr const char* kRecoverProg = R"(
    sethi g20, %hi(handler)
    orlo g20, %lo(handler)
    settvec g20
    setlo g3, 4097
    ldwi g4, g3, 0       # misaligned: vectors to handler
    setlo g9, 77         # RETT target (fall-through of faulting packet)
    halt
  handler:
    mftr g5, 0           # saved cause
    mftr g7, 2           # fall-through pc of the faulting packet
    rett g7
)";

TEST(TrapDelivery, CycleSimGuestHandlerRecoversMisalignedLoad) {
  cpu::CycleSim sim(assemble_or_throw(kRecoverProg));
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);
  EXPECT_TRUE(res.halted);
  EXPECT_EQ(sim.cpu().state().read(5),
            static_cast<u32>(TrapCause::kMisaligned));
  EXPECT_EQ(sim.cpu().state().read(9), 77u);
  EXPECT_EQ(sim.cpu().stats().traps_delivered, 1u);
  EXPECT_FALSE(sim.cpu().state().in_trap);  // RETT re-armed delivery
}

TEST(TrapDelivery, FunctionalSimGuestHandlerRecoversMisalignedLoad) {
  sim::FunctionalSim sim(assemble_or_throw(kRecoverProg));
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);
  EXPECT_EQ(sim.state().read(5), static_cast<u32>(TrapCause::kMisaligned));
  EXPECT_EQ(sim.state().read(9), 77u);
  EXPECT_EQ(sim.traps_delivered(), 1u);
}

TEST(TrapDelivery, NoHandlerStillTerminatesTheRun) {
  // tvec == 0: PR 1 behavior is unchanged — the trap surfaces as the
  // termination reason instead of vectoring anywhere.
  cpu::CycleSim sim(assemble_or_throw(R"(
    setlo g3, 4097
    ldwi g4, g3, 0
    halt
  )"));
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kTrap);
  EXPECT_EQ(res.trap.code, TrapCause::kMisaligned);
  EXPECT_EQ(sim.cpu().stats().traps_delivered, 0u);
}

TEST(TrapDelivery, DoubleFaultStaysFatal) {
  // The handler itself takes a misaligned load while in_trap is set: the
  // second trap must not re-enter the handler (infinite recursion) but end
  // the run.
  cpu::CycleSim sim(assemble_or_throw(R"(
    sethi g20, %hi(handler)
    orlo g20, %lo(handler)
    settvec g20
    setlo g3, 4097
    ldwi g4, g3, 0
    halt
  handler:
    ldwi g6, g3, 0       # faults again inside the handler
    rett g7
  )"));
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kTrap);
  EXPECT_EQ(res.trap.code, TrapCause::kMisaligned);
  EXPECT_EQ(sim.cpu().stats().traps_delivered, 1u);  // first trap only
}

// --------------------------------------------------------------------- ECC

// Walks an array with stores then re-reads it into a checksum in g10.
constexpr const char* kChecksumProg = R"(
    .data
  buf: .space 1024
    .code
    sethi g3, %hi(buf)
    orlo g3, %lo(buf)
    setlo g5, 256        # words
    setlo g6, 1
  fill:
    stwi g6, g3, 0
    addi g6, g6, 3
    addi g3, g3, 4
    addi g5, g5, -1
    bnz g5, fill
    sethi g3, %hi(buf)
    orlo g3, %lo(buf)
    setlo g5, 256
    setlo g10, 0
  sum:
    ldwi g7, g3, 0
    add g10, g10, g7
    addi g3, g3, 4
    addi g5, g5, -1
    bnz g5, sum
    halt
)";

TEST(Faults, CorrectableEccIsBitIdenticalToFaultFree) {
  cpu::CycleSim clean(assemble_or_throw(kChecksumProg));
  const auto clean_res = clean.run();
  ASSERT_EQ(clean_res.reason, TerminationReason::kHalted);

  TimingConfig cfg;
  cfg.faults.dram_correctable_rate = 1.0;  // every line needs correction
  cpu::CycleSim faulty(assemble_or_throw(kChecksumProg), cfg);
  const auto res = faulty.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);
  // SEC-DED corrected every read; the architectural result is untouched.
  EXPECT_EQ(faulty.cpu().state().read(10), clean.cpu().state().read(10));
  EXPECT_GE(faulty.ecc().corrected(), 1u);
  EXPECT_EQ(faulty.ecc().machine_checks(), 0u);
  EXPECT_EQ(faulty.ecc().silent_corruptions(), 0u);
}

TEST(Faults, UncorrectableEccRaisesMachineCheck) {
  TimingConfig cfg;
  cfg.faults.dram_uncorrectable_rate = 1.0;
  cpu::CycleSim sim(assemble_or_throw(kChecksumProg), cfg);
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kTrap);
  EXPECT_EQ(res.trap.code, TrapCause::kMachineCheck);
  EXPECT_GE(sim.ecc().machine_checks(), 1u);
}

TEST(Faults, EccOffSilentlyCorruptsData) {
  cpu::CycleSim clean(assemble_or_throw(kChecksumProg));
  clean.run();

  TimingConfig cfg;
  cfg.faults.dram_correctable_rate = 1.0;
  cfg.faults.ecc_enabled = false;
  cpu::CycleSim sim(assemble_or_throw(kChecksumProg), cfg);
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);  // no trap, just rot
  EXPECT_GE(sim.ecc().silent_corruptions(), 1u);
  EXPECT_NE(sim.cpu().state().read(10), clean.cpu().state().read(10));
}

// ------------------------------------------- machine-check recovery policy

TEST(Faults, RetryPolicyAbsorbsUncorrectableEcc) {
  cpu::CycleSim clean(assemble_or_throw(kChecksumProg));
  clean.run();

  TimingConfig cfg;
  cfg.faults.dram_uncorrectable_rate = 1.0;
  cfg.faults.mc_policy = MachineCheckPolicy::kRetry;
  cpu::CycleSim sim(assemble_or_throw(kChecksumProg), cfg);
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);
  EXPECT_EQ(sim.cpu().state().read(10), clean.cpu().state().read(10));
  EXPECT_GE(sim.ecc().retried(), 1u);
  EXPECT_GE(sim.ecc().machine_checks(), 1u);
  EXPECT_EQ(sim.ecc().silent_corruptions(), 0u);
}

TEST(Faults, PoisonPolicyScrubsLinesAndContinues) {
  cpu::CycleSim clean(assemble_or_throw(kChecksumProg));
  clean.run();

  TimingConfig cfg;
  cfg.faults.dram_uncorrectable_rate = 1.0;
  cfg.faults.mc_policy = MachineCheckPolicy::kPoison;
  cpu::CycleSim sim(assemble_or_throw(kChecksumProg), cfg);
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);
  EXPECT_EQ(sim.cpu().state().read(10), clean.cpu().state().read(10));
  EXPECT_GE(sim.ecc().poisoned_lines(), 1u);
  // A scrubbed line is healed for the rest of the run: far fewer machine
  // checks than lines read, and none fatal.
  EXPECT_EQ(res.trap.code, TrapCause::kNone);
}

TEST(Faults, DeliverPolicyWithoutHandlerIsFatal) {
  TimingConfig cfg;
  cfg.faults.dram_uncorrectable_rate = 1.0;
  cfg.faults.mc_policy = MachineCheckPolicy::kDeliver;
  cpu::CycleSim sim(assemble_or_throw(kChecksumProg), cfg);
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kTrap);
  EXPECT_EQ(res.trap.code, TrapCause::kMachineCheck);
  EXPECT_TRUE(res.trap.deliverable);  // policy allowed delivery; no tvec
}

TEST(Faults, DeliverPolicyReachesGuestHandlerWhichRetries) {
  // End-to-end RAS path: uncorrectable ECC error → line scrubbed → machine
  // check delivered to the guest handler → handler retries the faulting
  // packet via RETT tpc → scrubbed line reads clean → kernel completes with
  // the fault-free checksum. g62 counts handler entries.
  constexpr const char* kHandled = R"(
      .data
    buf: .space 1024
      .code
      sethi g60, %hi(handler)
      orlo g60, %lo(handler)
      settvec g60
      sethi g3, %hi(buf)
      orlo g3, %lo(buf)
      setlo g5, 256
      setlo g6, 1
    fill:
      stwi g6, g3, 0
      addi g6, g6, 3
      addi g3, g3, 4
      addi g5, g5, -1
      bnz g5, fill
      sethi g3, %hi(buf)
      orlo g3, %lo(buf)
      setlo g5, 256
      setlo g10, 0
    sum:
      ldwi g7, g3, 0
      add g10, g10, g7
      addi g3, g3, 4
      addi g5, g5, -1
      bnz g5, sum
      halt
    handler:
      addi g62, g62, 1
      mftr g61, 1        # tpc: retry the faulting packet
      rett g61
  )";
  cpu::CycleSim clean(assemble_or_throw(kChecksumProg));
  clean.run();

  TimingConfig cfg;
  cfg.faults.dram_uncorrectable_rate = 0.05;
  cfg.faults.mc_policy = MachineCheckPolicy::kDeliver;
  cpu::CycleSim sim(assemble_or_throw(kHandled), cfg);
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);
  EXPECT_EQ(sim.cpu().state().read(10), clean.cpu().state().read(10));
  EXPECT_GE(sim.cpu().stats().traps_delivered, 1u);
  EXPECT_EQ(sim.cpu().state().read(62), sim.cpu().stats().traps_delivered);
  EXPECT_GE(sim.ecc().poisoned_lines(), 1u);
}

// ----------------------------------------------------- fill parity / xbar

TEST(Faults, FillParityRetriesCostTimeNotCorrectness) {
  cpu::CycleSim clean(assemble_or_throw(kChecksumProg));
  const auto clean_res = clean.run();

  TimingConfig cfg;
  // Each refetch redraws per fill index, so at 0.5 every fill succeeds
  // within the 8-attempt refetch bound with overwhelming probability.
  cfg.faults.fill_parity_rate = 0.5;
  cpu::CycleSim sim(assemble_or_throw(kChecksumProg), cfg);
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);
  EXPECT_EQ(sim.cpu().state().read(10), clean.cpu().state().read(10));
  EXPECT_GE(sim.memsys().lsu(0).counters().get("fill_parity_retries"), 1u);
  EXPECT_GT(res.cycles, clean_res.cycles);
}

TEST(Faults, FillParityExhaustionRaisesBoundedMachineCheck) {
  // At rate 1.0 every refetch is corrupted too: instead of spinning until
  // the watchdog fires, the bounded refetch gives up after max_fill_retries
  // attempts and raises a machine check.
  TimingConfig cfg;
  cfg.faults.fill_parity_rate = 1.0;
  cfg.faults.max_fill_retries = 4;
  cpu::CycleSim sim(assemble_or_throw(kChecksumProg), cfg);
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kTrap);
  EXPECT_EQ(res.trap.code, TrapCause::kMachineCheck);
  const mem::MemorySystem& ms = sim.memsys();
  EXPECT_GE(ms.ifetch_machine_checks() +
                ms.lsu(0).counter(mem::LsuCounter::kFillMachineChecks),
            1u);
}

TEST(Faults, CrossbarGrantFaultsDelayTransfers) {
  cpu::CycleSim clean(assemble_or_throw(kChecksumProg));
  const auto clean_res = clean.run();

  TimingConfig cfg;
  cfg.faults.xbar_delay_rate = 0.5;
  cfg.faults.xbar_drop_rate = 0.1;
  cpu::CycleSim sim(assemble_or_throw(kChecksumProg), cfg);
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);
  EXPECT_EQ(sim.cpu().state().read(10), clean.cpu().state().read(10));
  EXPECT_GE(sim.memsys().xbar().delayed_grants(), 1u);
  // A dropped grant pays a full re-arbitration, so it is strictly slower
  // than a delayed one — but still invisible to architecture.
  EXPECT_GE(sim.memsys().xbar().dropped_grants(), 1u);
  EXPECT_GT(res.cycles, clean_res.cycles);
}

// ---------------------------------------------------------------- watchdog

TEST(Faults, WatchdogKillsSingleCpuInfiniteLoop) {
  TimingConfig cfg;
  cfg.watchdog_cycles = 5'000;
  cpu::CycleSim sim(assemble_or_throw(R"(
  spin:
    bz g0, spin
    halt
  )"),
                    cfg);
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kWatchdog);
  EXPECT_FALSE(res.halted);
  EXPECT_LT(res.cycles, 100'000u);  // killed well before the packet cap
}

TEST(Faults, WatchdogKillsLivelockedDualCpuRun) {
  // CPU0 finishes; CPU1 spins on a flag nobody ever sets. Loads and branches
  // are not progress, so the watchdog fires long before the packet cap.
  const char* src = R"(
    .data
  flag: .space 4
    .code
    getcpu g20
    bnz g20, consumer
    halt
  consumer:
    sethi g11, %hi(flag)
    orlo g11, %lo(flag)
  spin:
    ldwi g5, g11, 0
    bz g5, spin
    halt
  )";
  TimingConfig cfg;
  cfg.watchdog_cycles = 20'000;
  soc::Majc5200 chip(assemble_or_throw(src), cfg);
  const auto res = chip.run();
  EXPECT_EQ(res.reason, TerminationReason::kWatchdog);
  EXPECT_FALSE(res.all_halted);
  EXPECT_LT(res.packets[1], 1'000'000u);
  EXPECT_NE(res.dump.find("watchdog"), std::string::npos);
  EXPECT_NE(res.dump.find("cpu0"), std::string::npos);
  EXPECT_NE(res.dump.find("cpu1"), std::string::npos);
}

// --------------------------------------------------------- way disabling

TEST(Faults, DisabledWaysDegradeTimingNotResults) {
  // Three lines in the same set: they co-reside in a healthy 4-way D$ but
  // thrash a cache degraded to one live way.
  const char* src = R"(
    .data
  buf: .space 12288       # spans three 4 KB set-strides
    .code
    sethi g3, %hi(buf)
    orlo g3, %lo(buf)
    setlo g8, 4096
    add g6, g3, g8
    add g7, g6, g8
    setlo g5, 200
    setlo g10, 0
  loop:
    ldw g11, g3, g0
    ldw g12, g6, g0
    ldw g13, g7, g0
    add g10, g10, g11
    add g10, g10, g12
    add g10, g10, g13
    addi g5, g5, -1
    bnz g5, loop
    halt
  )";
  cpu::CycleSim healthy(assemble_or_throw(src));
  const auto base = healthy.run();
  ASSERT_EQ(base.reason, TerminationReason::kHalted);

  TimingConfig cfg;
  cfg.dcache_disabled_ways = 3;  // 4-way D$ degraded to a single live way
  cpu::CycleSim degraded(assemble_or_throw(src), cfg);
  const auto res = degraded.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);
  EXPECT_EQ(degraded.memsys().dcache().disabled_ways(), 3u);
  EXPECT_EQ(degraded.cpu().state().read(10), healthy.cpu().state().read(10));
  EXPECT_GT(res.cycles, base.cycles);
  EXPECT_GT(degraded.memsys().dcache().misses(), healthy.memsys().dcache().misses());
}

} // namespace
} // namespace majc
