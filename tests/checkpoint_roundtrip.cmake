# CLI checkpoint round trip (ctest: checkpoint_cli_roundtrip).
#
# For each run mode, compares an unbroken majc_run against one that was
# stopped at a packet cap while checkpointing periodically, then restored
# from the surviving checkpoint and run to completion. The stats JSON of
# both runs — cycles, packets, recovery counters, arch_digest — must be
# byte-identical.
#
# Invoked in script mode with:
#   -DMAJC_RUN=<path to majc_run>  -DWORK_DIR=<scratch dir>

if(NOT DEFINED MAJC_RUN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "checkpoint_roundtrip.cmake needs -DMAJC_RUN and -DWORK_DIR")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# A store loop long enough (~10k packets) that --max-packets=1500 stops it
# mid-flight with several checkpoints already written.
file(WRITE "${WORK_DIR}/prog.s" [[
    .data
  buf: .space 64
    .code
    sethi g3, %hi(buf)
    orlo g3, %lo(buf)
    setlo g5, 2000
    setlo g6, 0
  loop:
    add g6, g6, g5
    stwi g6, g3, 0
    addi g5, g5, -1
    bnz g5, loop
    trap g0, g6, 0
    halt
]])

# majc_run exits 0 on halt, 1 on a packet-cap/watchdog/trap stop, 2 on hard
# errors. The checkpointed leg stops at the cap by design, so `max_rc`
# names the worst acceptable exit per call.
function(run_majc max_rc out_json)
  execute_process(
    COMMAND "${MAJC_RUN}" ${ARGN} "--stats-json=${out_json}"
            "${WORK_DIR}/prog.s"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc GREATER ${max_rc})
    message(FATAL_ERROR "majc_run ${ARGN} failed (rc=${rc}):\n${out}\n${err}")
  endif()
endfunction()

foreach(mode_flag IN ITEMS "" "-f" "-2")
  if(mode_flag STREQUAL "")
    set(tag "cycle")
    set(flags "")
  else()
    if(mode_flag STREQUAL "-f")
      set(tag "functional")
    else()
      set(tag "chip")
    endif()
    set(flags "${mode_flag}")
  endif()

  set(golden "${WORK_DIR}/${tag}_golden.json")
  set(partial "${WORK_DIR}/${tag}_partial.json")
  set(resumed "${WORK_DIR}/${tag}_resumed.json")
  set(ckpt "${WORK_DIR}/${tag}.ckpt")

  run_majc(0 "${golden}" ${flags})
  run_majc(1 "${partial}" ${flags} "--checkpoint-out=${ckpt}"
           "--checkpoint-every=500" "--max-packets=1500")
  if(NOT EXISTS "${ckpt}")
    message(FATAL_ERROR "${tag}: no checkpoint written")
  endif()
  run_majc(0 "${resumed}" ${flags} "--restore=${ckpt}")

  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files "${golden}" "${resumed}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "${tag}: restored stats differ from unbroken run "
                        "(${golden} vs ${resumed})")
  endif()
  message(STATUS "${tag}: restored run byte-identical to unbroken run")
endforeach()
