// Differential fuzzing: random (but well-formed) MAJC programs must leave
// identical architectural state on the instruction-accurate simulator and
// on the cycle-accurate model (whose stalls, caches, LSU scheduling and
// branch prediction must never change computed values), and the cycle
// model's statistics must satisfy basic invariants.
#include <gtest/gtest.h>

#include "src/cpu/cycle_cpu.h"
#include "src/masm/assembler.h"
#include "src/sim/functional_sim.h"
#include "src/support/rng.h"

namespace majc {
namespace {

/// Emit a random straight-line body with occasional bounded loops and
/// masked in-bounds memory traffic on a 4 KB scratch region.
std::string random_program(u64 seed, u32 packets) {
  SplitMix64 rng(seed);
  std::string src = ".data\nscratch: .space 4096\n.code\n";
  src += "sethi g3, %hi(scratch)\norlo g3, %lo(scratch)\n";
  // Random initial register state.
  for (u32 r = 10; r <= 29; ++r) {
    const u32 v = rng.next_u32();
    src += "sethi g" + std::to_string(r) + ", " + std::to_string(v >> 16) +
           "\norlo g" + std::to_string(r) + ", " + std::to_string(v & 0xFFFF) +
           "\n";
  }
  auto reg = [&] { return "g" + std::to_string(10 + rng.next_below(20)); };
  auto lreg = [&] { return "l" + std::to_string(rng.next_below(8)); };

  static const char* kFu0Ops[] = {"add", "sub", "and", "or", "xor",
                                  "sll", "srl", "sra", "cmplt", "cmpltu"};
  static const char* kComputeOps[] = {
      "add",      "sub",    "and",      "or",       "xor",    "andn",
      "sll",      "srl",    "sra",      "satadd",   "satsub", "mul",
      "mulhi",    "madd",   "msub",     "padd",     "padd.s", "psub.u",
      "pmulh.s",  "pmuls15.s", "pmaddh.s", "dotp",  "lzd",    "pdist",
      "fadd",     "fsub",   "fmul",     "fmadd",    "fmin",   "fmax",
      "fneg",     "fabs",   "fcmplt",   "itof",     "cmpeq",  "cmple"};

  u32 loop_depth = 0;
  u32 loops = 0;
  for (u32 p = 0; p < packets; ++p) {
    const u32 kind = rng.next_below(10);
    if (kind == 0) {
      // Masked word load from scratch.
      src += std::string("andi g9, ") + reg() + ", 252\n";
      src += std::string("ldw ") + reg() + ", g3, g9\n";
    } else if (kind == 1) {
      src += std::string("andi g9, ") + reg() + ", 252\n";
      src += std::string("stw ") + reg() + ", g3, g9\n";
    } else if (kind == 2 && loop_depth == 0 && loops < 3) {
      // Bounded countdown loop.
      const u32 n = 2 + rng.next_below(6);
      src += "setlo g8, " + std::to_string(n) + "\n";
      src += "lp" + std::to_string(loops) + ":\n";
      loop_depth = 1;
      ++loops;
    } else if (kind == 3 && loop_depth == 1) {
      src += "addi g8, g8, -1\n";
      src += "bnz g8, lp" + std::to_string(loops - 1) + "\n";
      loop_depth = 0;
    } else {
      // A 1-4 wide compute packet.
      const u32 width = 1 + rng.next_below(4);
      for (u32 s = 0; s < width; ++s) {
        if (s > 0) src += " | ";
        const char* op =
            s == 0 ? kFu0Ops[rng.next_below(std::size(kFu0Ops))]
                   : kComputeOps[rng.next_below(std::size(kComputeOps))];
        const std::string rd = (s > 0 && rng.next_below(3) == 0) ? lreg() : reg();
        src += std::string(op) + " " + rd + ", " + reg() + ", " + reg();
      }
      src += "\n";
    }
  }
  if (loop_depth == 1) {
    src += "addi g8, g8, -1\nbnz g8, lp" + std::to_string(loops - 1) + "\n";
  }
  src += "halt\n";
  return src;
}

class Differential : public ::testing::TestWithParam<u64> {};

TEST_P(Differential, CycleModelComputesIdenticalState) {
  const std::string src = random_program(GetParam(), 120);

  sim::FunctionalSim fsim(masm::assemble_or_throw(src));
  const auto fres = fsim.run(2'000'000);
  ASSERT_TRUE(fres.halted) << src;

  cpu::CycleSim csim(masm::assemble_or_throw(src));
  const auto cres = csim.run(2'000'000);
  ASSERT_TRUE(cres.halted);

  // Registers (all 224, including every FU's locals).
  for (u32 r = 0; r < isa::kNumRegs; ++r) {
    ASSERT_EQ(fsim.state().regs[r], csim.cpu().state().regs[r])
        << "register " << r << " diverged (seed " << GetParam() << ")";
  }
  // Scratch memory.
  const Addr base = fsim.program().image().symbol("scratch");
  for (u32 off = 0; off < 4096; off += 4) {
    ASSERT_EQ(fsim.memory().read_u32(base + off),
              csim.memory().read_u32(base + off))
        << "memory +" << off << " diverged (seed " << GetParam() << ")";
  }

  // Statistics invariants.
  EXPECT_EQ(fres.packets, cres.packets);
  EXPECT_EQ(fres.instrs, cres.instrs);
  EXPECT_GE(cres.cycles, cres.packets);  // at most one packet per cycle
  EXPECT_EQ(csim.cpu().stats().width_hist.total(), cres.packets);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range<u64>(1, 25));

TEST(Differential, MicrothreadedModelAlsoMatches) {
  // Two contexts running the same random program on disjoint scratch halves
  // must each match a functional reference run.
  const std::string body = random_program(777, 60);
  // Shift each context's scratch accesses by gettid*2048.
  std::string src = body;
  const std::string anchor = "orlo g3, %lo(scratch)\n";
  src.replace(src.find(anchor), anchor.size(),
              anchor + "gettid g7\nslli g7, g7, 11\nadd g3, g3, g7\n");

  TimingConfig cfg;
  cfg.hw_threads = 2;
  cpu::CycleSim csim(masm::assemble_or_throw(src), cfg);
  ASSERT_TRUE(csim.run(4'000'000).halted);

  sim::FunctionalSim fsim(masm::assemble_or_throw(body));
  ASSERT_TRUE(fsim.run(2'000'000).halted);

  // Thread 0 used scratch+0, like the functional run; compare it.
  const Addr base = fsim.program().image().symbol("scratch");
  for (u32 off = 0; off < 2048; off += 4) {
    ASSERT_EQ(fsim.memory().read_u32(base + off),
              csim.memory().read_u32(base + off))
        << "thread-0 memory +" << off;
  }
  for (u32 r = 10; r <= 29; ++r) {
    EXPECT_EQ(fsim.state().regs[r], csim.cpu().state(0).regs[r]) << r;
  }
}

} // namespace
} // namespace majc
