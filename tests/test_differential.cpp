// Differential fuzzing: random (but well-formed) MAJC programs must leave
// identical architectural state on the instruction-accurate simulator and
// on the cycle-accurate model (whose stalls, caches, LSU scheduling and
// branch prediction must never change computed values), and the cycle
// model's statistics must satisfy basic invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <span>
#include <tuple>

#include "src/cpu/cycle_cpu.h"
#include "src/kernels/biquad.h"
#include "src/kernels/bitrev.h"
#include "src/kernels/cfir.h"
#include "src/kernels/color_convert.h"
#include "src/kernels/convolve.h"
#include "src/kernels/dct_quant.h"
#include "src/kernels/fft.h"
#include "src/kernels/fir.h"
#include "src/kernels/idct.h"
#include "src/kernels/lms.h"
#include "src/kernels/max_search.h"
#include "src/kernels/mb_decode.h"
#include "src/kernels/motion_est.h"
#include "src/kernels/vld.h"
#include "src/masm/assembler.h"
#include "src/sim/functional_sim.h"
#include "src/support/rng.h"

namespace majc {
namespace {

/// Emit a random straight-line body with occasional bounded loops and
/// masked in-bounds memory traffic on a 4 KB scratch region.
std::string random_program(u64 seed, u32 packets) {
  SplitMix64 rng(seed);
  std::string src = ".data\nscratch: .space 4096\n.code\n";
  src += "sethi g3, %hi(scratch)\norlo g3, %lo(scratch)\n";
  // Random initial register state.
  for (u32 r = 10; r <= 29; ++r) {
    const u32 v = rng.next_u32();
    src += "sethi g" + std::to_string(r) + ", " + std::to_string(v >> 16) +
           "\norlo g" + std::to_string(r) + ", " + std::to_string(v & 0xFFFF) +
           "\n";
  }
  auto reg = [&] { return "g" + std::to_string(10 + rng.next_below(20)); };
  auto lreg = [&] { return "l" + std::to_string(rng.next_below(8)); };

  static const char* kFu0Ops[] = {"add", "sub", "and", "or", "xor",
                                  "sll", "srl", "sra", "cmplt", "cmpltu"};
  static const char* kComputeOps[] = {
      "add",      "sub",    "and",      "or",       "xor",    "andn",
      "sll",      "srl",    "sra",      "satadd",   "satsub", "mul",
      "mulhi",    "madd",   "msub",     "padd",     "padd.s", "psub.u",
      "pmulh.s",  "pmuls15.s", "pmaddh.s", "dotp",  "lzd",    "pdist",
      "fadd",     "fsub",   "fmul",     "fmadd",    "fmin",   "fmax",
      "fneg",     "fabs",   "fcmplt",   "itof",     "cmpeq",  "cmple"};

  u32 loop_depth = 0;
  u32 loops = 0;
  for (u32 p = 0; p < packets; ++p) {
    const u32 kind = rng.next_below(10);
    if (kind == 0) {
      // Masked word load from scratch.
      src += std::string("andi g9, ") + reg() + ", 252\n";
      src += std::string("ldw ") + reg() + ", g3, g9\n";
    } else if (kind == 1) {
      src += std::string("andi g9, ") + reg() + ", 252\n";
      src += std::string("stw ") + reg() + ", g3, g9\n";
    } else if (kind == 2 && loop_depth == 0 && loops < 3) {
      // Bounded countdown loop.
      const u32 n = 2 + rng.next_below(6);
      src += "setlo g8, " + std::to_string(n) + "\n";
      src += "lp" + std::to_string(loops) + ":\n";
      loop_depth = 1;
      ++loops;
    } else if (kind == 3 && loop_depth == 1) {
      src += "addi g8, g8, -1\n";
      src += "bnz g8, lp" + std::to_string(loops - 1) + "\n";
      loop_depth = 0;
    } else {
      // A 1-4 wide compute packet.
      const u32 width = 1 + rng.next_below(4);
      for (u32 s = 0; s < width; ++s) {
        if (s > 0) src += " | ";
        const char* op =
            s == 0 ? kFu0Ops[rng.next_below(std::size(kFu0Ops))]
                   : kComputeOps[rng.next_below(std::size(kComputeOps))];
        const std::string rd = (s > 0 && rng.next_below(3) == 0) ? lreg() : reg();
        src += std::string(op) + " " + rd + ", " + reg() + ", " + reg();
      }
      src += "\n";
    }
  }
  if (loop_depth == 1) {
    src += "addi g8, g8, -1\nbnz g8, lp" + std::to_string(loops - 1) + "\n";
  }
  src += "halt\n";
  return src;
}

class Differential : public ::testing::TestWithParam<u64> {};

TEST_P(Differential, CycleModelComputesIdenticalState) {
  const std::string src = random_program(GetParam(), 120);

  sim::FunctionalSim fsim(masm::assemble_or_throw(src));
  const auto fres = fsim.run(2'000'000);
  ASSERT_TRUE(fres.halted) << src;

  cpu::CycleSim csim(masm::assemble_or_throw(src));
  const auto cres = csim.run(2'000'000);
  ASSERT_TRUE(cres.halted);

  // Registers (all 224, including every FU's locals).
  for (u32 r = 0; r < isa::kNumRegs; ++r) {
    ASSERT_EQ(fsim.state().regs[r], csim.cpu().state().regs[r])
        << "register " << r << " diverged (seed " << GetParam() << ")";
  }
  // Scratch memory.
  const Addr base = fsim.program().image().symbol("scratch");
  for (u32 off = 0; off < 4096; off += 4) {
    ASSERT_EQ(fsim.memory().read_u32(base + off),
              csim.memory().read_u32(base + off))
        << "memory +" << off << " diverged (seed " << GetParam() << ")";
  }

  // Statistics invariants.
  EXPECT_EQ(fres.packets, cres.packets);
  EXPECT_EQ(fres.instrs, cres.instrs);
  EXPECT_GE(cres.cycles, cres.packets);  // at most one packet per cycle
  EXPECT_EQ(csim.cpu().stats().width_hist.total(), cres.packets);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range<u64>(1, 25));

// ---- Table 1 / Table 2 kernel sweep ----
//
// Every paper kernel, run from a seeded-random machine state: both sims get
// identical random initial registers (all 224 except the hardwired g0, the
// stack-convention g2, and the GETTICK scratch g90/g91) and an identical
// 64 KB random high-memory region, on 8 MB guest memory. The cycle model's
// stalls, caches, LSU scheduling and branch prediction must not change any
// computed value: registers, all of memory (minus the 8-byte `ticks` region,
// whose GETTICK values legitimately differ between the two time bases) and
// the packet/instruction counts must match, and the kernel's own golden
// validation must pass on both.

using SpecFactory = kernels::KernelSpec (*)(u64);

struct KernelCase {
  const char* name;
  SpecFactory make;
};

const KernelCase kKernelCases[] = {
    {"idct", kernels::make_idct_spec},
    {"dct_quant", kernels::make_dct_quant_spec},
    {"vld", kernels::make_vld_spec},
    {"motion_est", kernels::make_motion_est_spec},
    {"convolve", kernels::make_convolve_spec},
    {"color_convert", kernels::make_color_convert_spec},
    {"mb_decode", kernels::make_mb_decode_spec},
    {"fir", kernels::make_fir_spec},
    {"iir", kernels::make_iir_spec},
    {"biquad", kernels::make_biquad_spec},
    {"cfir", kernels::make_cfir_spec},
    {"lms", kernels::make_lms_spec},
    {"max_search", kernels::make_max_search_spec},
    {"fft_radix2", kernels::make_fft_radix2_spec},
    {"fft_radix4", kernels::make_fft_radix4_spec},
    {"bitrev", kernels::make_bitrev_spec},
};

class KernelDifferential
    : public ::testing::TestWithParam<std::tuple<int, u64>> {};

TEST_P(KernelDifferential, KernelsComputeIdenticalStateFromRandomMachineState) {
  const auto [kernel_index, seed] = GetParam();
  const KernelCase& kc = kKernelCases[kernel_index];
  const kernels::KernelSpec spec = kc.make(seed);

  constexpr std::size_t kMemBytes = 8u << 20;
  sim::FunctionalSim fsim(masm::assemble_or_throw(spec.source), kMemBytes);
  cpu::CycleSim csim(masm::assemble_or_throw(spec.source), TimingConfig{},
                     kMemBytes);
  if (spec.setup) {
    spec.setup(fsim.memory(), fsim.program().image());
    spec.setup(csim.memory(), csim.program().image());
  }

  // Identical seeded-random machine state in both sims.
  SplitMix64 rng(seed * 1000003u + static_cast<u64>(kernel_index));
  for (u32 r = 1; r < isa::kNumRegs; ++r) {
    if (r == 2 || r == 90 || r == 91) continue;
    const u32 v = rng.next_u32();
    fsim.state().regs[r] = v;
    csim.cpu().state().regs[r] = v;
  }
  constexpr Addr kHighBase = 6u << 20;
  for (u32 off = 0; off < (64u << 10); off += 4) {
    const u32 v = rng.next_u32();
    fsim.memory().write_u32(kHighBase + off, v);
    csim.memory().write_u32(kHighBase + off, v);
  }

  const auto fres = fsim.run(spec.max_packets);
  const auto cres = csim.run(spec.max_packets);
  ASSERT_TRUE(fres.halted) << kc.name;
  ASSERT_TRUE(cres.halted) << kc.name;
  EXPECT_EQ(fres.packets, cres.packets) << kc.name;
  EXPECT_EQ(fres.instrs, cres.instrs) << kc.name;

  // Registers: exclude the GETTICK scratch pair — g91 latches a tick value
  // and the two sims run on different time bases (packets vs cycles).
  for (u32 r = 0; r < isa::kNumRegs; ++r) {
    if (r == 90 || r == 91) continue;
    ASSERT_EQ(fsim.state().regs[r], csim.cpu().state().regs[r])
        << kc.name << " register " << r << " diverged (seed " << seed << ")";
  }

  // All of memory, minus the 8-byte ticks region.
  Addr ticks = ~Addr{0};
  const auto& syms = fsim.program().image().symbols;
  if (auto it = syms.find("ticks"); it != syms.end()) ticks = it->second;
  std::span<u8> fm = fsim.memory().raw();
  std::span<u8> cm = csim.memory().raw();
  ASSERT_EQ(fm.size(), cm.size());
  if (ticks != ~Addr{0}) {
    // Blank out the excluded window in both images, then compare wholesale.
    std::fill_n(fm.begin() + ticks, 8, u8{0});
    std::fill_n(cm.begin() + ticks, 8, u8{0});
  }
  if (std::memcmp(fm.data(), cm.data(), fm.size()) != 0) {
    std::size_t i = 0;
    while (i < fm.size() && fm[i] == cm[i]) ++i;
    FAIL() << kc.name << " memory byte 0x" << std::hex << i
           << " diverged (seed " << std::dec << seed << ")";
  }

  // The kernel's own golden-model validation must hold on both sims.
  if (spec.validate) {
    std::string msg;
    EXPECT_TRUE(spec.validate(fsim.memory(), fsim.program().image(), msg))
        << kc.name << " functional: " << msg;
    EXPECT_TRUE(spec.validate(csim.memory(), csim.program().image(), msg))
        << kc.name << " cycle: " << msg;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelDifferential,
    ::testing::Combine(::testing::Range(0, static_cast<int>(std::size(
                                               kKernelCases))),
                       ::testing::Values<u64>(2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, u64>>& info) {
      return std::string(kKernelCases[std::get<0>(info.param)].name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Differential, MicrothreadedModelAlsoMatches) {
  // Two contexts running the same random program on disjoint scratch halves
  // must each match a functional reference run.
  const std::string body = random_program(777, 60);
  // Shift each context's scratch accesses by gettid*2048.
  std::string src = body;
  const std::string anchor = "orlo g3, %lo(scratch)\n";
  src.replace(src.find(anchor), anchor.size(),
              anchor + "gettid g7\nslli g7, g7, 11\nadd g3, g3, g7\n");

  TimingConfig cfg;
  cfg.hw_threads = 2;
  cpu::CycleSim csim(masm::assemble_or_throw(src), cfg);
  ASSERT_TRUE(csim.run(4'000'000).halted);

  sim::FunctionalSim fsim(masm::assemble_or_throw(body));
  ASSERT_TRUE(fsim.run(2'000'000).halted);

  // Thread 0 used scratch+0, like the functional run; compare it.
  const Addr base = fsim.program().image().symbol("scratch");
  for (u32 off = 0; off < 2048; off += 4) {
    ASSERT_EQ(fsim.memory().read_u32(base + off),
              csim.memory().read_u32(base + off))
        << "thread-0 memory +" << off;
  }
  for (u32 r = 10; r <= 29; ++r) {
    EXPECT_EQ(fsim.state().regs[r], csim.cpu().state(0).regs[r]) << r;
  }
}

} // namespace
} // namespace majc
