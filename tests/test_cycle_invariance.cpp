// Guest-visible cycle counts must not move when the host-side fast path
// changes. The golden values below were captured from the pre-predecode
// model (PR 1 tree) with the default TimingConfig; the predecode layer,
// flat stall counters and cached-now bookkeeping are host-only
// optimisations, so every kernel must reproduce them bit-identically.
//
// If a future PR changes the *timing model* on purpose, re-capture these
// numbers and say so in the commit; an unexplained diff here is a bug.
#include <gtest/gtest.h>

#include "src/cpu/cycle_cpu.h"
#include "src/kernels/biquad.h"
#include "src/kernels/bitrev.h"
#include "src/kernels/cfir.h"
#include "src/kernels/color_convert.h"
#include "src/kernels/convolve.h"
#include "src/kernels/dct_quant.h"
#include "src/kernels/fft.h"
#include "src/kernels/fir.h"
#include "src/kernels/idct.h"
#include "src/kernels/kernel.h"
#include "src/kernels/lms.h"
#include "src/kernels/max_search.h"
#include "src/kernels/mb_decode.h"
#include "src/kernels/motion_est.h"
#include "src/kernels/vld.h"
#include "src/masm/assembler.h"
#include "src/soc/chip.h"

namespace majc {
namespace {

struct Golden {
  const char* name;
  Cycle kernel_cycles;
  Cycle total_cycles;
};

void check(const kernels::KernelSpec& spec, const Golden& g) {
  SCOPED_TRACE(g.name);
  const kernels::KernelRun r = kernels::run_kernel(spec);
  ASSERT_TRUE(r.valid) << r.message;
  EXPECT_EQ(r.kernel_cycles, g.kernel_cycles);
  EXPECT_EQ(r.total_cycles, g.total_cycles);
}

TEST(CycleInvariance, Table1DspKernels) {
  check(kernels::make_biquad_spec(), {"biquad", 51u, 914u});
  check(kernels::make_fir_spec(), {"fir", 1899u, 5495u});
  check(kernels::make_iir_spec(), {"iir", 1873u, 5272u});
  check(kernels::make_cfir_spec(), {"cfir", 10507u, 23744u});
  check(kernels::make_lms_spec(), {"lms", 58u, 794u});
  check(kernels::make_max_search_spec(), {"max_search", 140u, 1417u});
  check(kernels::make_bitrev_spec(), {"bitrev", 3069u, 10909u});
  check(kernels::make_fft_radix2_spec(), {"fft_radix2", 76180u, 76282u});
  check(kernels::make_fft_radix4_spec(), {"fft_radix4", 58494u, 58574u});
}

TEST(CycleInvariance, Table2VideoKernels) {
  check(kernels::make_idct_spec(), {"idct", 317u, 5115u});
  check(kernels::make_dct_quant_spec(), {"dct_quant", 365u, 5809u});
  check(kernels::make_vld_spec(), {"vld", 12480u, 12583u});
  check(kernels::make_motion_est_spec(), {"motion_est", 4143u, 15474u});
  check(kernels::make_mb_decode_spec(), {"mb_decode", 11794u, 12391u});
}

TEST(CycleInvariance, StreamingKernels) {
  check(kernels::make_convolve_spec(), {"convolve", 1908265u, 1908456u});
  check(kernels::make_color_convert_spec(),
        {"color_convert", 1602678u, 1603332u});
}

// ---- Degraded configurations. The hot-path machinery (cache hints,
// fetch memos, incremental LSU watermarks) must stay bit-identical when
// ways are disabled (hints can dangle into dead ways) and when fault
// injection perturbs fills and crossbar transfers mid-stream. ----

void check_cfg(const kernels::KernelSpec& spec, const TimingConfig& cfg,
               const Golden& g) {
  SCOPED_TRACE(g.name);
  const kernels::KernelRun r = kernels::run_kernel(spec, cfg);
  ASSERT_TRUE(r.valid) << r.message;
  EXPECT_EQ(r.kernel_cycles, g.kernel_cycles);
  EXPECT_EQ(r.total_cycles, g.total_cycles);
}

TEST(CycleInvariance, WayDisabledCaches) {
  TimingConfig cfg;
  cfg.dcache_disabled_ways = 2;
  cfg.icache_disabled_ways = 1;
  check_cfg(kernels::make_fir_spec(), cfg, {"fir", 1899u, 5495u});
  check_cfg(kernels::make_idct_spec(), cfg, {"idct", 317u, 5115u});
  check_cfg(kernels::make_mb_decode_spec(), cfg, {"mb_decode", 11794u, 12391u});
  check_cfg(kernels::make_motion_est_spec(), cfg,
            {"motion_est", 4143u, 15474u});
}

TEST(CycleInvariance, FaultInjectionConfigs) {
  TimingConfig faulty;
  faulty.faults.seed = 77;
  faulty.faults.dram_correctable_rate = 1.0 / 4096;
  faulty.faults.fill_parity_rate = 1.0 / 512;
  faulty.faults.xbar_delay_rate = 1.0 / 256;
  check_cfg(kernels::make_fir_spec(), faulty, {"fir", 1899u, 5495u});
  check_cfg(kernels::make_idct_spec(), faulty, {"idct", 317u, 5115u});
  check_cfg(kernels::make_mb_decode_spec(), faulty,
            {"mb_decode", 11794u, 12391u});
  check_cfg(kernels::make_motion_est_spec(), faulty,
            {"motion_est", 4143u, 15504u});

  TimingConfig both = faulty;
  both.dcache_disabled_ways = 2;
  both.icache_disabled_ways = 1;
  check_cfg(kernels::make_mb_decode_spec(), both,
            {"mb_decode", 11794u, 12391u});
  check_cfg(kernels::make_motion_est_spec(), both,
            {"motion_est", 4143u, 15504u});
}

// ---- Watchdog. The chip's run loop tracks cross-CPU progress
// incrementally; the exact cycle at which a no-progress spin trips the
// watchdog is guest-visible and must not drift when the recompute is
// restructured. ----

constexpr const char* kSpinProgram = R"(
    .data
  flag: .space 4
    .code
    sethi g3, %hi(flag)
    orlo g3, %lo(flag)
    setlo g4, 1
    stwi g4, g3, 0
  spin:
    ldwi g5, g3, 0
    bnz g5, spin
    halt
)";

TEST(CycleInvariance, WatchdogFiresAtPinnedCycle) {
  TimingConfig cfg;
  cfg.watchdog_cycles = 5000;
  cpu::CycleSim sim(masm::assemble_or_throw(kSpinProgram), cfg);
  const auto res = sim.run();
  EXPECT_EQ(res.reason, TerminationReason::kWatchdog);
  EXPECT_EQ(res.cycles, 5047u);
  EXPECT_EQ(res.packets, 3352u);
}

TEST(CycleInvariance, ChipWatchdogFiresAtPinnedCycle) {
  TimingConfig cfg;
  cfg.watchdog_cycles = 5000;
  soc::Majc5200 chip(masm::assemble_or_throw(kSpinProgram), cfg);
  const auto res = chip.run();
  EXPECT_EQ(res.reason, TerminationReason::kWatchdog);
  EXPECT_EQ(res.cycles, 5066u);
  EXPECT_EQ(res.packets[0], 3370u);
  EXPECT_EQ(res.packets[1], 3336u);
}

TEST(CycleInvariance, DualCpuChipGolden) {
  // Both CPUs run to completion through the shared D$ and crossbar; the
  // chip's earliest-CPU batch stepping must interleave them exactly as the
  // original lockstep loop did.
  constexpr const char* kDual = R"(
      .data
    out: .space 8
      .code
      getcpu g3
      sethi g4, %hi(out)
      orlo g4, %lo(out)
      slli g5, g3, 2
      setlo g6, 100
      setlo g7, 0
    lp:
      add g7, g7, g6
      addi g6, g6, -1
      bnz g6, lp
      stw g7, g4, g5
      membar
      halt
  )";
  soc::Majc5200 chip(masm::assemble_or_throw(kDual));
  const auto res = chip.run();
  EXPECT_EQ(res.reason, TerminationReason::kHalted);
  EXPECT_TRUE(res.all_halted);
  EXPECT_EQ(res.cycles, 429u);
  EXPECT_EQ(res.packets[0], 309u);
  EXPECT_EQ(res.packets[1], 309u);
}

// ---- Fast path vs general path. Installing a trace observer forces the
// general (traced) step loop; every guest-visible artifact — cycles,
// packets, registers, cache and LSU statistics — must match the untraced
// fast path bit for bit. ----

TEST(CycleInvariance, TracedPathMatchesFastPath) {
  const kernels::KernelSpec spec = kernels::make_mb_decode_spec();

  cpu::CycleSim fast(masm::assemble_or_throw(spec.source));
  const auto rf = fast.run();

  cpu::CycleSim traced(masm::assemble_or_throw(spec.source));
  u64 events = 0;
  traced.cpu().set_trace([&events](const cpu::TraceEvent&) { ++events; });
  const auto rt = traced.run();

  EXPECT_GT(events, 0u);
  EXPECT_EQ(rf.cycles, rt.cycles);
  EXPECT_EQ(rf.packets, rt.packets);
  EXPECT_EQ(rf.instrs, rt.instrs);
  EXPECT_EQ(rf.reason, rt.reason);
  for (u32 r = 0; r < isa::kNumRegs; ++r) {
    EXPECT_EQ(fast.cpu().state().regs[r], traced.cpu().state().regs[r])
        << "reg " << r;
  }
  EXPECT_EQ(fast.memsys().dcache().hits(), traced.memsys().dcache().hits());
  EXPECT_EQ(fast.memsys().dcache().misses(),
            traced.memsys().dcache().misses());
  EXPECT_EQ(fast.memsys().icache(0).hits(), traced.memsys().icache(0).hits());
  EXPECT_EQ(fast.memsys().icache(0).misses(),
            traced.memsys().icache(0).misses());
}

} // namespace
} // namespace majc
