// Guest-visible cycle counts must not move when the host-side fast path
// changes. The golden values below were captured from the pre-predecode
// model (PR 1 tree) with the default TimingConfig; the predecode layer,
// flat stall counters and cached-now bookkeeping are host-only
// optimisations, so every kernel must reproduce them bit-identically.
//
// If a future PR changes the *timing model* on purpose, re-capture these
// numbers and say so in the commit; an unexplained diff here is a bug.
#include <gtest/gtest.h>

#include "src/kernels/biquad.h"
#include "src/kernels/bitrev.h"
#include "src/kernels/cfir.h"
#include "src/kernels/color_convert.h"
#include "src/kernels/convolve.h"
#include "src/kernels/dct_quant.h"
#include "src/kernels/fft.h"
#include "src/kernels/fir.h"
#include "src/kernels/idct.h"
#include "src/kernels/kernel.h"
#include "src/kernels/lms.h"
#include "src/kernels/max_search.h"
#include "src/kernels/mb_decode.h"
#include "src/kernels/motion_est.h"
#include "src/kernels/vld.h"

namespace majc {
namespace {

struct Golden {
  const char* name;
  Cycle kernel_cycles;
  Cycle total_cycles;
};

void check(const kernels::KernelSpec& spec, const Golden& g) {
  SCOPED_TRACE(g.name);
  const kernels::KernelRun r = kernels::run_kernel(spec);
  ASSERT_TRUE(r.valid) << r.message;
  EXPECT_EQ(r.kernel_cycles, g.kernel_cycles);
  EXPECT_EQ(r.total_cycles, g.total_cycles);
}

TEST(CycleInvariance, Table1DspKernels) {
  check(kernels::make_biquad_spec(), {"biquad", 51u, 914u});
  check(kernels::make_fir_spec(), {"fir", 1899u, 5495u});
  check(kernels::make_iir_spec(), {"iir", 1873u, 5272u});
  check(kernels::make_cfir_spec(), {"cfir", 10507u, 23744u});
  check(kernels::make_lms_spec(), {"lms", 58u, 794u});
  check(kernels::make_max_search_spec(), {"max_search", 140u, 1417u});
  check(kernels::make_bitrev_spec(), {"bitrev", 3069u, 10909u});
  check(kernels::make_fft_radix2_spec(), {"fft_radix2", 76180u, 76282u});
  check(kernels::make_fft_radix4_spec(), {"fft_radix4", 58494u, 58574u});
}

TEST(CycleInvariance, Table2VideoKernels) {
  check(kernels::make_idct_spec(), {"idct", 317u, 5115u});
  check(kernels::make_dct_quant_spec(), {"dct_quant", 365u, 5809u});
  check(kernels::make_vld_spec(), {"vld", 12480u, 12583u});
  check(kernels::make_motion_est_spec(), {"motion_est", 4143u, 15474u});
  check(kernels::make_mb_decode_spec(), {"mb_decode", 11794u, 12391u});
}

TEST(CycleInvariance, StreamingKernels) {
  check(kernels::make_convolve_spec(), {"convolve", 1908265u, 1908456u});
  check(kernels::make_color_convert_spec(),
        {"color_convert", 1602678u, 1603332u});
}

} // namespace
} // namespace majc
