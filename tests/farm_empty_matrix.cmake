# Pin majc_farm's empty-campaign-matrix behaviour: a matrix that expands to
# zero jobs (here: --seeds=0) is a usage error — exit 2 with a diagnostic —
# not a vacuously green run. Guards CI sweeps against misconfiguration that
# would otherwise "pass" while running nothing.
#
# Invoked as:
#   cmake -DMAJC_FARM=<path-to-majc_farm> -P farm_empty_matrix.cmake

execute_process(
  COMMAND ${MAJC_FARM} --seeds=0
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(NOT rc EQUAL 2)
  message(FATAL_ERROR
          "majc_farm --seeds=0 exited ${rc}, expected 2 (stderr: ${err})")
endif()

if(NOT err MATCHES "empty campaign matrix")
  message(FATAL_ERROR
          "majc_farm --seeds=0 stderr missing the empty-matrix diagnostic: "
          "${err}")
endif()

if(NOT err MATCHES "usage: majc_farm")
  message(FATAL_ERROR
          "majc_farm --seeds=0 stderr missing the usage text: ${err}")
endif()
