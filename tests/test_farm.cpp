// Farm engine tests: the three determinism pillars of src/farm/.
//
//  * campaign JSON is byte-identical for any worker count (including under
//    fault injection) — the property majc_farm and soak_faults rely on;
//  * an engine job is bit-identical to a fresh run_kernel / _functional of
//    the same spec+config (shared predecode changes nothing architectural);
//  * a reused (reset-in-place) machine reproduces a fresh machine exactly,
//    even after running a *different* kernel in between.
#include <gtest/gtest.h>

#include <vector>

#include "src/farm/campaign.h"
#include "src/farm/farm.h"
#include "src/kernels/bitrev.h"
#include "src/kernels/fir.h"
#include "src/kernels/kernel.h"
#include "src/kernels/max_search.h"

namespace majc {
namespace {

constexpr u64 kSeed = 0x5eed;

/// Small kernel set (fast enough for a unit test) with faults derived the
/// same way the soak harness storms them.
farm::Engine make_small_campaign(bool with_faults) {
  farm::Engine eng;
  eng.add_kernel(kernels::make_fir_spec());
  eng.add_kernel(kernels::make_bitrev_spec());
  eng.add_kernel(kernels::make_max_search_spec());
  for (u32 ki = 0; ki < eng.num_kernels(); ++ki) {
    for (u64 it = 0; it < 2; ++it) {
      farm::Job job;
      job.kernel = ki;
      job.iteration = it;
      if (with_faults) {
        job.cfg.faults = farm::derive_soak_faults(kSeed, ki, it);
      }
      eng.submit(job);
      job.mode = farm::SimMode::kFunctional;
      eng.submit(job);
    }
  }
  return eng;
}

void expect_same_run(const kernels::KernelRun& a, const kernels::KernelRun& b) {
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.halted, b.halted);
  EXPECT_EQ(a.kernel_cycles, b.kernel_cycles);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.instrs, b.instrs);
  EXPECT_EQ(a.arch_digest, b.arch_digest);
  EXPECT_EQ(a.recovery.ecc_corrected, b.recovery.ecc_corrected);
  EXPECT_EQ(a.recovery.ecc_retried, b.recovery.ecc_retried);
  EXPECT_EQ(a.recovery.fill_parity_retries, b.recovery.fill_parity_retries);
  EXPECT_EQ(a.recovery.xbar_delayed_grants, b.recovery.xbar_delayed_grants);
  EXPECT_EQ(a.message, b.message);
}

// ------------------------------------------------------- campaign determinism

TEST(Farm, CampaignJsonByteIdenticalAcrossWorkerCounts) {
  const farm::Engine eng = make_small_campaign(/*with_faults=*/false);
  const std::string j1 = farm::campaign_json(eng, eng.run(1), kSeed);
  const std::string j4 = farm::campaign_json(eng, eng.run(4), kSeed);
  EXPECT_FALSE(j1.empty());
  EXPECT_EQ(j1, j4);
}

TEST(Farm, CampaignJsonByteIdenticalUnderFaultInjection) {
  const farm::Engine eng = make_small_campaign(/*with_faults=*/true);
  const std::vector<farm::JobResult> r1 = eng.run(1);
  const std::vector<farm::JobResult> r4 = eng.run(4);
  EXPECT_EQ(farm::campaign_json(eng, r1, kSeed),
            farm::campaign_json(eng, r4, kSeed));
  // The storm actually exercised recovery (not a vacuous comparison).
  u64 recovered = 0;
  for (const farm::JobResult& r : r1) {
    EXPECT_TRUE(r.run.valid) << r.run.message;
    recovered += r.run.recovery.ecc_corrected + r.run.recovery.ecc_retried +
                 r.run.recovery.xbar_delayed_grants;
  }
  EXPECT_GT(recovered, 0u);
}

TEST(Farm, ResultsLandInSubmissionOrder) {
  const farm::Engine eng = make_small_campaign(/*with_faults=*/false);
  const std::vector<farm::JobResult> res = eng.run(3);
  ASSERT_EQ(res.size(), eng.jobs().size());
  for (std::size_t i = 0; i < res.size(); ++i) {
    const farm::Job& job = eng.jobs()[i];
    // Cycle jobs report real cycle counts (> packets: every packet costs at
    // least a cycle and stalls add more); functional jobs stand in packet
    // count for time. Distinguishable, so a shuffled result vector fails.
    EXPECT_TRUE(res[i].run.valid) << "job " << i << ": " << res[i].run.message;
    if (job.mode == farm::SimMode::kCycle) {
      EXPECT_GT(res[i].run.total_cycles, res[i].run.packets) << "job " << i;
    } else {
      EXPECT_EQ(res[i].run.total_cycles, res[i].run.packets) << "job " << i;
    }
  }
}

// ------------------------------------------- engine == fresh run_kernel runs

TEST(Farm, CycleJobMatchesFreshRunKernel) {
  const kernels::KernelSpec spec = kernels::make_fir_spec();
  TimingConfig cfg;
  cfg.faults = farm::derive_soak_faults(kSeed, 0, 0);

  farm::Engine eng;
  eng.add_kernel(spec);
  farm::Job job;
  job.cfg = cfg;
  eng.submit(job);
  const std::vector<farm::JobResult> res = eng.run(1);

  const kernels::KernelRun fresh = kernels::run_kernel(spec, cfg);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_TRUE(fresh.valid) << fresh.message;
  expect_same_run(res[0].run, fresh);
}

TEST(Farm, FunctionalJobMatchesFreshRunKernelFunctional) {
  const kernels::KernelSpec spec = kernels::make_bitrev_spec();
  farm::Engine eng;
  eng.add_kernel(spec);
  farm::Job job;
  job.mode = farm::SimMode::kFunctional;
  eng.submit(job);
  const std::vector<farm::JobResult> res = eng.run(1);

  const kernels::KernelRun fresh = kernels::run_kernel_functional(spec);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_TRUE(fresh.valid) << fresh.message;
  expect_same_run(res[0].run, fresh);
}

// ------------------------------------------------------------- machine reuse

TEST(Farm, ResetMachineReproducesFreshMachine) {
  // Run A, then B, then A again on ONE reused machine: the third run must be
  // bit-identical to a fresh-machine run of A — reset() leaks nothing (no
  // stale memory, cache state, predictor history or fault-stream position).
  const kernels::CompiledKernel a =
      kernels::compile_kernel(kernels::make_fir_spec());
  const kernels::CompiledKernel b =
      kernels::compile_kernel(kernels::make_max_search_spec());
  TimingConfig cfg_a;
  cfg_a.faults = farm::derive_soak_faults(kSeed, 0, 1);
  TimingConfig cfg_b;  // fault-free in between, to move cache/arena state

  cpu::CycleSim machine(a.program, cfg_a);
  const kernels::KernelRun first = kernels::run_kernel_on(machine, a.spec);
  machine.reset(b.program, cfg_b);
  const kernels::KernelRun other = kernels::run_kernel_on(machine, b.spec);
  EXPECT_TRUE(other.valid) << other.message;
  machine.reset(a.program, cfg_a);
  const kernels::KernelRun again = kernels::run_kernel_on(machine, a.spec);

  const kernels::KernelRun fresh = kernels::run_kernel(a.spec, cfg_a);
  EXPECT_TRUE(fresh.valid) << fresh.message;
  expect_same_run(first, fresh);
  expect_same_run(again, fresh);
}

TEST(Farm, ResetFunctionalSimReproducesFreshSim) {
  const kernels::CompiledKernel a =
      kernels::compile_kernel(kernels::make_fir_spec());
  const kernels::CompiledKernel b =
      kernels::compile_kernel(kernels::make_bitrev_spec());

  sim::FunctionalSim machine(a.program);
  const kernels::KernelRun first = kernels::run_kernel_on(machine, a.spec);
  machine.reset(b.program);
  const kernels::KernelRun other = kernels::run_kernel_on(machine, b.spec);
  EXPECT_TRUE(other.valid) << other.message;
  machine.reset(a.program);
  const kernels::KernelRun again = kernels::run_kernel_on(machine, a.spec);

  const kernels::KernelRun fresh = kernels::run_kernel_functional(a.spec);
  EXPECT_TRUE(fresh.valid) << fresh.message;
  expect_same_run(first, fresh);
  expect_same_run(again, fresh);
}

TEST(Farm, WorkerMachinesReuseMatchesFreshAcrossModes) {
  // The engine's per-worker machine pair, driven directly: alternate cycle
  // and functional jobs on the same WorkerMachines and check each against a
  // fresh single-shot run.
  const kernels::CompiledKernel k =
      kernels::compile_kernel(kernels::make_max_search_spec());
  farm::WorkerMachines wm;
  farm::Job cycle_job;
  farm::Job func_job;
  func_job.mode = farm::SimMode::kFunctional;
  cycle_job.cfg.faults = farm::derive_soak_faults(kSeed, 2, 0);

  const kernels::KernelRun c1 = wm.run(k, cycle_job);
  const kernels::KernelRun f1 = wm.run(k, func_job);
  const kernels::KernelRun c2 = wm.run(k, cycle_job);
  const kernels::KernelRun f2 = wm.run(k, func_job);

  expect_same_run(c1, kernels::run_kernel(k.spec, cycle_job.cfg));
  expect_same_run(f1, kernels::run_kernel_functional(k.spec));
  expect_same_run(c2, c1);
  expect_same_run(f2, f1);
}

// --------------------------------------------------------------- error paths

TEST(Farm, ThrowingJobBecomesInvalidResultNotEngineFailure) {
  kernels::KernelSpec bad;
  bad.name = "bad";
  bad.source = "start:\n  halt\n";
  bad.setup = [](sim::MemoryBus&, const masm::Image&) {
    throw std::runtime_error("setup exploded");
  };
  farm::Engine eng;
  eng.add_kernel(std::move(bad));
  eng.submit(farm::Job{});
  const std::vector<farm::JobResult> res = eng.run(2);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_FALSE(res[0].run.valid);
  EXPECT_NE(res[0].run.message.find("setup exploded"), std::string::npos);
}

TEST(Farm, DeriveSoakFaultsIsPureAndSeedSensitive) {
  const FaultConfig a = farm::derive_soak_faults(1, 2, 3);
  const FaultConfig b = farm::derive_soak_faults(1, 2, 3);
  const FaultConfig c = farm::derive_soak_faults(2, 2, 3);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.dram_correctable_rate, b.dram_correctable_rate);
  EXPECT_NE(a.seed, c.seed);
  // Policy alternates by iteration, independent of seed.
  EXPECT_EQ(farm::derive_soak_faults(9, 0, 0).mc_policy,
            MachineCheckPolicy::kRetry);
  EXPECT_EQ(farm::derive_soak_faults(9, 0, 1).mc_policy,
            MachineCheckPolicy::kPoison);
}

} // namespace
} // namespace majc
