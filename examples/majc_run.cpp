// majc_run: command-line assembler + simulator. Assembles a MAJC .s file
// and executes it, printing TRAP console output and run statistics — the
// tool you reach for when writing your own MAJC assembly.
//
//   $ ./majc_run prog.s              # cycle-accurate run
//   $ ./majc_run -f prog.s           # instruction-accurate (fast) run
//   $ ./majc_run -d prog.s           # disassemble only
//   $ ./majc_run -2 prog.s           # run on both CPUs of the chip model
//   $ ./majc_run -c prog.s           # static schedule check only
//   $ ./majc_run -t prog.s           # cycle run with a pipeline trace
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/cpu/cycle_cpu.h"
#include "src/cpu/report.h"
#include "src/cpu/schedule_check.h"
#include "src/isa/disasm.h"
#include "src/masm/assembler.h"
#include "src/sim/functional_sim.h"
#include "src/soc/chip.h"

using namespace majc;

int main(int argc, char** argv) {
  bool functional = false, disasm_only = false, dual = false, schedcheck = false,
       trace = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-f") == 0) {
      functional = true;
    } else if (std::strcmp(argv[i], "-d") == 0) {
      disasm_only = true;
    } else if (std::strcmp(argv[i], "-2") == 0) {
      dual = true;
    } else if (std::strcmp(argv[i], "-c") == 0) {
      schedcheck = true;
    } else if (std::strcmp(argv[i], "-t") == 0) {
      trace = true;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: majc_run [-f|-d|-2] <prog.s>\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();

  std::vector<masm::Diagnostic> diags;
  auto image = masm::assemble(ss.str(), diags);
  for (const auto& d : diags) {
    std::fprintf(stderr, "%s:%u: %s\n", path, d.line, d.message.c_str());
  }
  if (!image) return 1;

  if (schedcheck) {
    const auto rep = cpu::check_schedule(*image);
    std::fputs(rep.to_string().c_str(), stdout);
    return rep.clean() ? 0 : 1;
  }
  if (disasm_only) {
    std::fputs(isa::disasm_code(image->code).c_str(), stdout);
    return 0;
  }
  if (functional) {
    sim::FunctionalSim sim(*image);
    const auto res = sim.run();
    std::fputs(sim.console().c_str(), stdout);
    std::printf("[functional] %llu packets, %llu instructions, %s\n",
                static_cast<unsigned long long>(res.packets),
                static_cast<unsigned long long>(res.instrs),
                termination_reason_name(res.reason));
    if (res.reason == TerminationReason::kTrap) {
      std::fputs(trap_report(res.trap, sim.program(), sim.state()).c_str(),
                 stderr);
    }
    return res.reason == TerminationReason::kHalted ? 0 : 1;
  }
  if (dual) {
    soc::Majc5200 chip(*image);
    const auto res = chip.run();
    for (u32 c = 0; c < 2; ++c) {
      std::fputs(chip.cpu(c).console().c_str(), stdout);
    }
    std::printf(
        "[chip] %llu cycles; cpu0 %llu packets, cpu1 %llu packets, %s\n",
        static_cast<unsigned long long>(res.cycles),
        static_cast<unsigned long long>(res.packets[0]),
        static_cast<unsigned long long>(res.packets[1]),
        termination_reason_name(res.reason));
    if (!res.dump.empty()) std::fputs(res.dump.c_str(), stderr);
    return res.reason == TerminationReason::kHalted ? 0 : 1;
  }
  cpu::CycleSim sim(*image);
  if (trace) {
    sim.cpu().set_trace([&](const cpu::TraceEvent& ev) {
      if (ev.context_switch) {
        std::printf("%8llu  thread %u switched out at pc 0x%llx\n",
                    static_cast<unsigned long long>(ev.cycle), ev.thread,
                    static_cast<unsigned long long>(ev.pc));
        return;
      }
      std::printf("%8llu  t%u pc 0x%05llx w%u%s%s%s\n",
                  static_cast<unsigned long long>(ev.cycle), ev.thread,
                  static_cast<unsigned long long>(ev.pc), ev.width,
                  ev.stall_operand ? " [operand]" : "",
                  ev.stall_ifetch ? " [ifetch]" : "",
                  ev.mispredicted ? " [mispredict]" : "");
    });
  }
  const auto res = sim.run();
  std::fputs(sim.console().c_str(), stdout);
  std::printf("[cycle] %llu cycles, %llu instructions, IPC %.2f, %s\n",
              static_cast<unsigned long long>(res.cycles),
              static_cast<unsigned long long>(res.instrs), res.ipc(),
              termination_reason_name(res.reason));
  if (res.reason == TerminationReason::kTrap) {
    std::fputs(sim::trap_report(res.trap, sim.program(),
                                sim.cpu().state(sim.cpu().active_thread()))
                   .c_str(),
               stderr);
  }
  std::fputs(cpu::performance_report(sim).c_str(), stdout);
  return res.reason == TerminationReason::kHalted ? 0 : 1;
}
