// majc_run: command-line assembler + simulator. Assembles a MAJC .s file
// and executes it, printing TRAP console output and run statistics — the
// tool you reach for when writing your own MAJC assembly.
//
//   $ ./majc_run prog.s              # cycle-accurate run
//   $ ./majc_run -f prog.s           # instruction-accurate (fast) run
//   $ ./majc_run -d prog.s           # disassemble only
//   $ ./majc_run -2 prog.s           # run on both CPUs of the chip model
//   $ ./majc_run -c prog.s           # static schedule check only
//   $ ./majc_run -t prog.s           # cycle run with a pipeline trace
//
// Functional-mode execution backend (see DESIGN.md §13):
//   --backend=interp|threaded   choose the packet interpreter or the
//                               threaded-code translation backend (default:
//                               threaded; guest-visible state is identical)
//   --shape-stats               print the translator's packet-shape
//                               histogram and fusion counters, then run
//
// Observability (cycle and chip modes):
//   --trace-out=FILE   write a Chrome trace-event JSON timeline (load the
//                      file in https://ui.perfetto.dev or chrome://tracing;
//                      "-" = stdout)
//   --profile[=N]      print the cycle-attribution profile (top N packets,
//                      default 10) after the run
//   --stats-json=FILE  write machine-readable run statistics ("-" = stdout)
//
// Checkpoint / restore (all run modes; see DESIGN.md §8):
//   --checkpoint-out=FILE   write a checkpoint of the final state; with
//                           --checkpoint-every, rewrite it periodically
//   --checkpoint-every=N    checkpoint after every N packets (per CPU)
//   --restore=FILE          resume from a checkpoint (same program, same
//                           configuration, same mode)
//   --max-packets=N         stop after N packets per CPU (cumulative across
//                           a restore; default 100000000)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "src/cpu/cycle_cpu.h"
#include "src/cpu/report.h"
#include "src/cpu/schedule_check.h"
#include "src/isa/disasm.h"
#include "src/masm/assembler.h"
#include "src/sim/functional_sim.h"
#include "src/sim/threaded.h"
#include "src/soc/chip.h"
#include "src/support/checkpoint.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/profiler.h"
#include "src/trace/stats_json.h"

using namespace majc;

namespace {

struct Options {
  bool functional = false;
  sim::ExecBackend backend = sim::ExecBackend::kThreaded;
  bool shape_stats = false;
  bool disasm_only = false;
  bool dual = false;
  bool schedcheck = false;
  bool trace_print = false;
  const char* trace_out = nullptr;
  const char* stats_json = nullptr;
  bool profile = false;
  u32 profile_top = 10;
  const char* checkpoint_out = nullptr;
  u64 checkpoint_every = 0;
  const char* restore = nullptr;
  u64 max_packets = 100'000'000;
  const char* path = nullptr;
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "-f") == 0) {
      opt.functional = true;
    } else if (std::strcmp(a, "-d") == 0) {
      opt.disasm_only = true;
    } else if (std::strcmp(a, "-2") == 0) {
      opt.dual = true;
    } else if (std::strcmp(a, "-c") == 0) {
      opt.schedcheck = true;
    } else if (std::strcmp(a, "-t") == 0) {
      opt.trace_print = true;
    } else if (std::strncmp(a, "--trace-out=", 12) == 0) {
      opt.trace_out = a + 12;
    } else if (std::strncmp(a, "--stats-json=", 13) == 0) {
      opt.stats_json = a + 13;
    } else if (std::strcmp(a, "--profile") == 0) {
      opt.profile = true;
    } else if (std::strncmp(a, "--profile=", 10) == 0) {
      opt.profile = true;
      opt.profile_top = static_cast<u32>(std::atoi(a + 10));
    } else if (std::strncmp(a, "--checkpoint-out=", 17) == 0) {
      opt.checkpoint_out = a + 17;
    } else if (std::strncmp(a, "--checkpoint-every=", 19) == 0) {
      opt.checkpoint_every = std::strtoull(a + 19, nullptr, 10);
    } else if (std::strncmp(a, "--restore=", 10) == 0) {
      opt.restore = a + 10;
    } else if (std::strncmp(a, "--max-packets=", 14) == 0) {
      opt.max_packets = std::strtoull(a + 14, nullptr, 10);
    } else if (std::strncmp(a, "--backend=", 10) == 0) {
      const char* v = a + 10;
      if (std::strcmp(v, "interp") == 0) {
        opt.backend = sim::ExecBackend::kInterp;
      } else if (std::strcmp(v, "threaded") == 0) {
        opt.backend = sim::ExecBackend::kThreaded;
      } else {
        std::fprintf(stderr, "--backend must be interp or threaded, got %s\n",
                     v);
        return false;
      }
    } else if (std::strcmp(a, "--shape-stats") == 0) {
      opt.shape_stats = true;
    } else if (a[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", a);
      return false;
    } else {
      opt.path = a;
    }
  }
  return opt.path != nullptr;
}

/// Write `emit(os)` to `path` ("-" = stdout). Returns false on I/O failure.
template <typename Fn>
bool write_file_or_stdout(const char* path, Fn emit) {
  if (std::strcmp(path, "-") == 0) {
    std::ostringstream ss;
    emit(ss);
    std::fputs(ss.str().c_str(), stdout);
    return true;
  }
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  emit(os);
  return os.good();
}

/// Restore `s` from a checkpoint file; diagnoses header mismatches
/// (different image / config / mode) and I/O failures.
template <typename Sim>
bool restore_from(const char* path, Sim& s) {
  try {
    ckpt::restore_checkpoint(s, ckpt::read_checkpoint_file(path));
    return true;
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return false;
  }
}

template <typename Sim>
bool save_to(const char* path, const Sim& s) {
  try {
    ckpt::write_checkpoint_file(path, ckpt::save_checkpoint(s));
    return true;
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return false;
  }
}

void print_legacy_trace(const cpu::TraceEvent& ev) {
  if (ev.context_switch) {
    std::printf("%8llu  thread %u switched out at pc 0x%llx\n",
                static_cast<unsigned long long>(ev.cycle), ev.thread,
                static_cast<unsigned long long>(ev.pc));
    return;
  }
  std::printf("%8llu  t%u pc 0x%05llx w%u%s%s%s\n",
              static_cast<unsigned long long>(ev.cycle), ev.thread,
              static_cast<unsigned long long>(ev.pc), ev.width,
              ev.stall_operand ? " [operand]" : "",
              ev.stall_ifetch ? " [ifetch]" : "",
              ev.mispredicted ? " [mispredict]" : "");
}

} // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: majc_run [-f|-d|-2|-c|-t] [--trace-out=FILE] "
                 "[--profile[=N]] [--stats-json=FILE]\n"
                 "                [--checkpoint-out=FILE] "
                 "[--checkpoint-every=N] [--restore=FILE]\n"
                 "                [--max-packets=N] "
                 "[--backend=interp|threaded] [--shape-stats] <prog.s>\n");
    return 2;
  }

  std::ifstream in(opt.path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", opt.path);
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();

  std::vector<masm::Diagnostic> diags;
  auto image = masm::assemble(ss.str(), diags);
  for (const auto& d : diags) {
    std::fprintf(stderr, "%s:%u: %s\n", opt.path, d.line, d.message.c_str());
  }
  if (!image) return 1;

  if (opt.schedcheck) {
    const auto rep = cpu::check_schedule(*image);
    std::fputs(rep.to_string().c_str(), stdout);
    return rep.clean() ? 0 : 1;
  }
  if (opt.disasm_only) {
    std::fputs(isa::disasm_code(image->code).c_str(), stdout);
    return 0;
  }
  if (opt.functional) {
    sim::FunctionalSim sim(*image);
    if (opt.shape_stats) {
      std::fputs(
          sim::format_shape_stats(sim.program().threaded().stats).c_str(),
          stdout);
    }
    if (opt.restore != nullptr && !restore_from(opt.restore, sim)) return 2;
    // Backend choice is host-side, outside the checkpoint format: re-apply
    // after restore so --backend composes with --restore.
    sim.set_backend(opt.backend);
    // run() takes a per-call budget, so the chunked loop hands it the
    // distance to the cumulative --max-packets cap each iteration.
    sim::RunResult res;
    for (;;) {
      const u64 done = sim.packets_run();
      const u64 budget = opt.max_packets > done ? opt.max_packets - done : 0;
      const u64 chunk = opt.checkpoint_every != 0
                            ? std::min(opt.checkpoint_every, budget)
                            : budget;
      res = sim.run(chunk);
      if (opt.checkpoint_out != nullptr && !save_to(opt.checkpoint_out, sim))
        return 2;
      if (res.reason != TerminationReason::kPacketCap ||
          opt.checkpoint_every == 0 || sim.packets_run() >= opt.max_packets)
        break;
    }
    std::fputs(sim.console().c_str(), stdout);
    std::printf("[functional] %llu packets, %llu instructions, %s\n",
                static_cast<unsigned long long>(sim.packets_run()),
                static_cast<unsigned long long>(sim.instrs_run()),
                termination_reason_name(res.reason));
    if (res.reason == TerminationReason::kTrap) {
      std::fputs(trap_report(res.trap, sim.program(), sim.state()).c_str(),
                 stderr);
    }
    if (opt.stats_json != nullptr) {
      write_file_or_stdout(opt.stats_json, [&](std::ostream& os) {
        trace::write_stats_json(os, sim, res);
      });
    }
    return res.reason == TerminationReason::kHalted ? 0 : 1;
  }

  // The timed modes share the observer plumbing: an optional Chrome trace
  // stream, an optional profiler, and the legacy -t console print compose
  // onto the same per-packet event stream.
  std::ofstream trace_file;
  std::unique_ptr<trace::ChromeTraceWriter> writer;
  if (opt.trace_out != nullptr) {
    const bool to_stdout = std::strcmp(opt.trace_out, "-") == 0;
    if (!to_stdout) {
      trace_file.open(opt.trace_out, std::ios::binary);
      if (!trace_file) {
        std::fprintf(stderr, "cannot write %s\n", opt.trace_out);
        return 2;
      }
    }
    writer = std::make_unique<trace::ChromeTraceWriter>(to_stdout ? std::cout
                                                                  : trace_file);
  }

  if (opt.dual) {
    soc::Majc5200 chip(*image);
    if (opt.restore != nullptr && !restore_from(opt.restore, chip)) return 2;
    std::vector<std::unique_ptr<trace::CpuTraceRecorder>> recorders;
    std::vector<std::unique_ptr<trace::LsuTraceRecorder>> lsu_recorders;
    std::unique_ptr<trace::DteTraceRecorder> dte_recorder;
    std::vector<std::unique_ptr<trace::CycleProfiler>> profilers;
    for (u32 c = 0; c < soc::Majc5200::kNumCpus; ++c) {
      if (opt.profile) {
        profilers.push_back(
            std::make_unique<trace::CycleProfiler>(chip.program()));
      }
      if (writer) {
        recorders.push_back(std::make_unique<trace::CpuTraceRecorder>(
            *writer, chip.program(), chip.memsys().config(), c));
        lsu_recorders.push_back(
            std::make_unique<trace::LsuTraceRecorder>(*writer, c));
        lsu_recorders.back()->attach(chip.memsys().lsu(c));
      }
      if (writer || opt.profile || opt.trace_print) {
        trace::CpuTraceRecorder* rec = writer ? recorders.back().get() : nullptr;
        trace::CycleProfiler* prof = opt.profile ? profilers.back().get() : nullptr;
        const bool echo = opt.trace_print;
        chip.cpu(c).set_trace([rec, prof, echo](const cpu::TraceEvent& ev) {
          if (rec != nullptr) rec->on_event(ev);
          if (prof != nullptr) prof->on_event(ev);
          if (echo) print_legacy_trace(ev);
        });
      }
    }
    if (writer) {
      dte_recorder = std::make_unique<trace::DteTraceRecorder>(*writer);
      dte_recorder->attach(chip.dte());
    }
    // run()'s cap is an absolute per-CPU packet count, so re-calling with a
    // larger cap resumes where the previous chunk stopped.
    soc::Majc5200::Result res;
    for (;;) {
      u64 done = 0;
      for (u32 c = 0; c < soc::Majc5200::kNumCpus; ++c)
        done = std::max(done, chip.cpu(c).stats().packets);
      const u64 cap =
          opt.checkpoint_every != 0
              ? std::min(done + opt.checkpoint_every, opt.max_packets)
              : opt.max_packets;
      res = chip.run(cap);
      if (opt.checkpoint_out != nullptr && !save_to(opt.checkpoint_out, chip))
        return 2;
      if (res.reason != TerminationReason::kPacketCap ||
          opt.checkpoint_every == 0 || cap >= opt.max_packets)
        break;
    }
    if (writer) writer->finish();
    for (u32 c = 0; c < 2; ++c) {
      std::fputs(chip.cpu(c).console().c_str(), stdout);
    }
    std::printf(
        "[chip] %llu cycles; cpu0 %llu packets, cpu1 %llu packets, %s\n",
        static_cast<unsigned long long>(res.cycles),
        static_cast<unsigned long long>(res.packets[0]),
        static_cast<unsigned long long>(res.packets[1]),
        termination_reason_name(res.reason));
    if (!res.dump.empty()) std::fputs(res.dump.c_str(), stderr);
    for (u32 c = 0; c < profilers.size(); ++c) {
      std::printf("\n[cpu%u]\n", c);
      std::fputs(profilers[c]
                     ->report(opt.profile_top, res.cycles,
                              chip.memsys().config().mt_switch_penalty)
                     .c_str(),
                 stdout);
    }
    if (opt.stats_json != nullptr) {
      write_file_or_stdout(opt.stats_json, [&](std::ostream& os) {
        trace::write_stats_json(os, chip, res);
      });
    }
    return res.reason == TerminationReason::kHalted ? 0 : 1;
  }

  cpu::CycleSim sim(*image);
  if (opt.restore != nullptr && !restore_from(opt.restore, sim)) return 2;
  std::unique_ptr<trace::CpuTraceRecorder> recorder;
  std::unique_ptr<trace::LsuTraceRecorder> lsu_recorder;
  std::unique_ptr<trace::CycleProfiler> profiler;
  if (writer) {
    recorder = std::make_unique<trace::CpuTraceRecorder>(
        *writer, sim.program(), sim.memsys().config(), 0);
    lsu_recorder = std::make_unique<trace::LsuTraceRecorder>(*writer, 0);
    lsu_recorder->attach(sim.memsys().lsu(0));
  }
  if (opt.profile) {
    profiler = std::make_unique<trace::CycleProfiler>(sim.program());
  }
  if (writer || profiler || opt.trace_print) {
    trace::CpuTraceRecorder* rec = recorder.get();
    trace::CycleProfiler* prof = profiler.get();
    const bool echo = opt.trace_print;
    sim.cpu().set_trace([rec, prof, echo](const cpu::TraceEvent& ev) {
      if (rec != nullptr) rec->on_event(ev);
      if (prof != nullptr) prof->on_event(ev);
      if (echo) print_legacy_trace(ev);
    });
  }
  cpu::CycleSim::Result res;
  for (;;) {
    const u64 done = sim.cpu().stats().packets;
    const u64 cap =
        opt.checkpoint_every != 0
            ? std::min(done + opt.checkpoint_every, opt.max_packets)
            : opt.max_packets;
    res = sim.run(cap);
    if (opt.checkpoint_out != nullptr && !save_to(opt.checkpoint_out, sim))
      return 2;
    if (res.reason != TerminationReason::kPacketCap ||
        opt.checkpoint_every == 0 || res.packets >= opt.max_packets)
      break;
  }
  if (writer) writer->finish();
  std::fputs(sim.console().c_str(), stdout);
  std::printf("[cycle] %llu cycles, %llu instructions, IPC %.2f, %s\n",
              static_cast<unsigned long long>(res.cycles),
              static_cast<unsigned long long>(res.instrs), res.ipc(),
              termination_reason_name(res.reason));
  if (res.reason == TerminationReason::kTrap) {
    std::fputs(sim::trap_report(res.trap, sim.program(),
                                sim.cpu().state(sim.cpu().active_thread()))
                   .c_str(),
               stderr);
  }
  std::fputs(cpu::performance_report(sim).c_str(), stdout);
  if (profiler) {
    std::fputs(
        profiler
            ->report(opt.profile_top, res.cycles,
                     sim.memsys().config().mt_switch_penalty)
            .c_str(),
        stdout);
  }
  if (opt.stats_json != nullptr) {
    write_file_or_stdout(opt.stats_json, [&](std::ostream& os) {
      trace::write_stats_json(os, sim, res);
    });
  }
  return res.reason == TerminationReason::kHalted ? 0 : 1;
}
