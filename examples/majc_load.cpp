// majc_load: load generator + latency probe for the majcd daemon.
//
// Opens N connections, drives M campaign requests down each, and reports
// p50/p99 request latency and aggregate campaign throughput as a
// majc-bench-v1 table (--json=FILE, same schema as the other benches so CI
// uploads it next to perf-smoke artifacts).
//
//   $ ./majcd --socket=/tmp/majcd.sock &
//   $ ./majc_load --socket=/tmp/majcd.sock --connections=4 --requests=8
//   $ ./majc_load --socket=/tmp/majcd.sock --campaign-out=served.json
//   $ ./majc_farm -j1 --kernels=fir,bitrev --seeds=1 --mode=functional \
//         --json=cli.json && cmp served.json cli.json
//
// Every request in a run is identical, so every campaign payload the
// daemon streams back must be byte-identical — the tool asserts this
// cross-request (and cross-connection) determinism itself and exits
// nonzero on any divergence, transport failure, or structured error.
// --campaign-out dumps the (single, shared) payload for the differential
// against `majc_farm --json` that CI's serve-smoke job runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/client.h"

using namespace majc;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: majc_load --socket=PATH [--connections=N] [--requests=N]\n"
      "                 [--kernels=a,b,...] [--seeds=N] [--seed=BASE]\n"
      "                 [--mode=cycle|functional|both]\n"
      "                 [--backend=interp|threaded] [--workers=N]\n"
      "                 [--json=FILE] [--campaign-out=FILE] [--quiet]\n");
  return 2;
}

struct ConnOutcome {
  std::vector<double> latencies_ms;
  std::string campaign;  // payload of this connection's first success
  u64 errors = 0;
  std::string first_error;
  bool divergent = false;  // some reply's payload differed from the first
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

} // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  unsigned connections = 2;
  unsigned requests = 4;
  std::string kernels_csv = "fir,bitrev";
  serve::CampaignRequest req;
  req.mode = "functional";
  req.seeds = 1;
  bool quiet = false;
  const char* campaign_out = nullptr;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--socket=", 0) == 0) {
      socket_path = a.substr(9);
    } else if (a.rfind("--connections=", 0) == 0) {
      connections = std::max(
          1u, static_cast<unsigned>(std::strtoul(a.c_str() + 14, nullptr, 10)));
    } else if (a.rfind("--requests=", 0) == 0) {
      requests = std::max(
          1u, static_cast<unsigned>(std::strtoul(a.c_str() + 11, nullptr, 10)));
    } else if (a.rfind("--kernels=", 0) == 0) {
      kernels_csv = a.substr(10);
    } else if (a.rfind("--seeds=", 0) == 0) {
      req.seeds = std::strtoull(a.c_str() + 8, nullptr, 10);
    } else if (a.rfind("--seed=", 0) == 0) {
      req.seed = std::strtoull(a.c_str() + 7, nullptr, 0);
    } else if (a.rfind("--mode=", 0) == 0) {
      req.mode = a.substr(7);
    } else if (a.rfind("--backend=", 0) == 0) {
      req.backend = a.substr(10);
    } else if (a.rfind("--workers=", 0) == 0) {
      req.workers = std::strtoull(a.c_str() + 10, nullptr, 10);
    } else if (a.rfind("--campaign-out=", 0) == 0) {
      campaign_out = argv[i] + 15;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a.rfind("--json=", 0) == 0) {
      // Consumed by bench::Table below.
    } else {
      return usage();
    }
  }
  if (socket_path.empty()) return usage();

  {
    std::stringstream ss(kernels_csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) req.kernels.push_back(item);
    }
  }
  if (req.kernels.empty()) return usage();

  std::vector<ConnOutcome> outcomes(connections);
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (unsigned ci = 0; ci < connections; ++ci) {
    threads.emplace_back([&, ci] {
      ConnOutcome& out = outcomes[ci];
      serve::Client client;
      std::string err;
      if (!client.connect(socket_path, &err)) {
        out.errors = requests;
        out.first_error = "connect: " + err;
        return;
      }
      for (unsigned ri = 0; ri < requests; ++ri) {
        serve::CampaignRequest r = req;
        r.id = static_cast<u64>(ci) * requests + ri + 1;
        serve::CampaignReply reply;
        const auto a = std::chrono::steady_clock::now();
        const bool ok = serve::run_campaign(client, r, &reply, &err);
        const auto b = std::chrono::steady_clock::now();
        if (!ok || !reply.ok) {
          ++out.errors;
          if (out.first_error.empty()) {
            out.first_error = !ok ? err
                                  : reply.error_code + ": " +
                                        reply.error_message;
          }
          continue;
        }
        out.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(b - a).count());
        if (out.campaign.empty()) {
          out.campaign = reply.campaign;
        } else if (reply.campaign != out.campaign) {
          out.divergent = true;
        }
      }
      client.close();
    });
  }
  for (std::thread& t : threads) t.join();

  const double wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Merge + cross-connection determinism check: every successful reply in
  // the whole run must carry the same campaign bytes.
  std::vector<double> latencies;
  std::string reference;
  u64 errors = 0;
  bool divergent = false;
  std::string first_error;
  for (const ConnOutcome& out : outcomes) {
    latencies.insert(latencies.end(), out.latencies_ms.begin(),
                     out.latencies_ms.end());
    errors += out.errors;
    if (out.divergent) divergent = true;
    if (first_error.empty()) first_error = out.first_error;
    if (out.campaign.empty()) continue;
    if (reference.empty()) {
      reference = out.campaign;
    } else if (out.campaign != reference) {
      divergent = true;
    }
  }

  const u64 total = static_cast<u64>(connections) * requests;
  const u64 completed = static_cast<u64>(latencies.size());
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double rate = wall_secs > 0.0
                          ? static_cast<double>(completed) / wall_secs
                          : 0.0;

  bench::Table table("majcd load: campaign latency/throughput", argc, argv);
  table.row("campaigns completed",
            std::to_string(total) + " sent",
            std::to_string(completed),
            static_cast<double>(completed), "campaigns");
  table.row("latency p50", "n/a", bench::fmt("%.2f ms", p50), p50, "ms");
  table.row("latency p99", "n/a", bench::fmt("%.2f ms", p99), p99, "ms");
  table.row("throughput", "n/a", bench::fmt("%.2f campaigns/s", rate), rate,
            "campaigns/s");
  table.note("connections=" + std::to_string(connections) +
             " requests/conn=" + std::to_string(requests) +
             " kernels=" + kernels_csv + " mode=" + req.mode +
             " backend=" + req.backend +
             " seeds=" + std::to_string(req.seeds));
  if (!quiet) {
    std::printf("majc_load: %llu/%llu ok in %.2fs, %llu error(s)%s\n",
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(total), wall_secs,
                static_cast<unsigned long long>(errors),
                divergent ? ", DIVERGENT payloads" : "");
  }
  table.finish();

  if (campaign_out != nullptr && !reference.empty()) {
    std::ofstream os(campaign_out, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "majc_load: cannot write %s\n", campaign_out);
      return 2;
    }
    os << reference;
  }

  if (divergent) {
    std::fprintf(stderr,
                 "majc_load: served campaign payloads DIVERGED across "
                 "identical requests\n");
    return 1;
  }
  if (errors != 0) {
    std::fprintf(stderr, "majc_load: %llu request(s) failed (first: %s)\n",
                 static_cast<unsigned long long>(errors),
                 first_error.c_str());
    return 1;
  }
  return 0;
}
