// Quickstart: assemble a MAJC program from source, run it on both the
// instruction-accurate and the cycle-accurate simulators, and inspect the
// results — the smallest end-to-end tour of the library.
//
//   $ ./quickstart
#include <cstdio>

#include "src/cpu/cycle_cpu.h"
#include "src/masm/assembler.h"
#include "src/sim/functional_sim.h"

int main() {
  // A VLIW packet per line; slot 0 is FU0 (memory/control), slots 1-3 are
  // the compute units. This program sums 1..100 twice — once sequentially
  // on FU0 and once with two parallel partial sums on FU1/FU2 — and prints
  // both through the TRAP console.
  const char* source = R"(
    .data
  result: .space 8
    .code
    setlo g3, 100        # i
    setlo g4, 0          # serial sum
    setlo g5, 0 | setlo g6, 0   # parallel partial sums
  loop:
    add g4, g4, g3
    addi g3, g3, -2 | add g5, g5, g3 | addi g6, g6, -1
    nop | add g6, g6, g3 | nop
    addi g3, g3, 2
    addi g3, g3, -1
    bnz g3, loop
    nop | add g5, g5, g6
    trap g0, g4, 0       # print serial sum
    sethi g8, %hi(result)
    orlo g8, %lo(result)
    stwi g4, g8, 0
    halt
  )";

  majc::masm::Image image = majc::masm::assemble_or_throw(source);

  // 1. Instruction-accurate run.
  majc::sim::FunctionalSim fsim(image);
  const auto fres = fsim.run();
  std::printf("functional: %llu packets, %llu instructions, console: %s",
              static_cast<unsigned long long>(fres.packets),
              static_cast<unsigned long long>(fres.instrs),
              fsim.console().c_str());

  // 2. Cycle-accurate run (same image, identical results by construction).
  majc::cpu::CycleSim csim(majc::masm::assemble_or_throw(source));
  const auto cres = csim.run();
  std::printf("cycle-accurate: %llu cycles, IPC %.2f\n",
              static_cast<unsigned long long>(cres.cycles), cres.ipc());
  std::printf("branch prediction accuracy: %.1f %%\n",
              100.0 * csim.cpu().predictor().accuracy());
  std::printf("result in memory: %u\n",
              csim.memory().read_u32(image.symbol("result")));
  return 0;
}
