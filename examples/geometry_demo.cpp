// Graphics pipeline example: compress a mesh with the geometry codec, feed
// it through the GPP model (decompress + load-balance across both CPUs
// running the transform+light kernel) and report the triangle rate — the
// paper's §5 high-end graphics scenario.
//
//   $ ./geometry_demo [vertex_count]
#include <cstdio>
#include <cstdlib>

#include "src/gpp/gpp.h"
#include "src/kernels/transform_light.h"

using namespace majc;

int main(int argc, char** argv) {
  const u32 vertices = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 30000;

  const gpp::Mesh mesh = gpp::make_test_mesh(vertices, /*seed=*/7);
  const auto stream = gpp::compress(mesh);
  std::printf("mesh: %u vertices, %u triangles, %u raw bytes\n",
              static_cast<u32>(mesh.vertices.size()), mesh.triangle_count(),
              mesh.raw_bytes());
  std::printf("compressed: %zu bytes (%.1fx)\n", stream.size(),
              gpp::compression_ratio(mesh, stream));

  // Round-trip check before timing anything.
  const gpp::Mesh decoded = gpp::decompress(stream);
  if (decoded.vertices.size() != mesh.vertices.size()) {
    std::printf("decompression mismatch!\n");
    return 1;
  }

  const double cpv = kernels::measure_tl_cycles_per_vertex(true);
  std::printf("CPU transform+light: %.1f cycles/vertex\n", cpv);

  mem::MemorySystem ms({});
  gpp::Gpp gpp_dev(ms);
  const auto res = gpp_dev.simulate_pipeline(stream, cpv);
  std::printf("\npipeline: %llu triangles in %llu cycles\n",
              static_cast<unsigned long long>(res.triangles),
              static_cast<unsigned long long>(res.cycles));
  std::printf("rate: %.1f Mtriangles/s (paper: 60-90 with leaner shading)\n",
              res.mtris_per_sec());
  std::printf("CPU0/CPU1 triangle split: %llu / %llu (balance %.2f)\n",
              static_cast<unsigned long long>(res.cpu_triangles[0]),
              static_cast<unsigned long long>(res.cpu_triangles[1]),
              res.balance());
  return 0;
}
