// DSP front-end example: the Table 2 kernels composed as a software-radio
// channel chain — channel-select FIR, biquad equalizer, adaptive LMS echo
// canceller and a spectral FFT — with the per-stage cycle budget a designer
// would use to size a MAJC-5200 deployment.
//
//   $ ./dsp_radio
#include <cstdio>

#include "src/kernels/biquad.h"
#include "src/kernels/fft.h"
#include "src/kernels/fir.h"
#include "src/kernels/lms.h"

using namespace majc;
using namespace majc::kernels;

int main() {
  std::printf("MAJC-5200 software-radio budget (single CPU at 500 MHz)\n\n");

  const KernelRun fir = run_kernel(make_fir_spec());
  const KernelRun iir = run_kernel(make_iir_spec());
  const KernelRun lms = run_kernel(make_lms_spec());
  const KernelRun fft = run_kernel(make_fft_radix4_spec());
  for (const auto* r : {&fir, &iir, &lms, &fft}) {
    if (!r->valid) {
      std::printf("kernel failed: %s\n", r->message.c_str());
      return 1;
    }
  }

  const double fir_sample = static_cast<double>(fir.kernel_cycles) / 64.0;
  const double iir_sample = static_cast<double>(iir.kernel_cycles) / 64.0;
  const double lms_sample = static_cast<double>(lms.kernel_cycles);
  std::printf("64-tap channel FIR   : %6.1f cycles/sample\n", fir_sample);
  std::printf("16th-order equalizer : %6.1f cycles/sample\n", iir_sample);
  std::printf("16-tap LMS canceller : %6.1f cycles/sample\n", lms_sample);
  std::printf("1024-pt radix-4 FFT  : %6llu cycles/transform\n",
              static_cast<unsigned long long>(fft.kernel_cycles));

  // A 48 kHz voice channel running all three sample-rate stages plus one
  // spectral FFT per 1024-sample hop:
  const double per_second =
      48000.0 * (fir_sample + iir_sample + lms_sample) +
      48000.0 / 1024.0 * static_cast<double>(fft.kernel_cycles);
  std::printf("\n48 kHz full chain: %.1f Mcycles/s = %.2f %% of one CPU\n",
              per_second / 1e6, 100.0 * per_second / kClockHz);
  std::printf("-> one MAJC-5200 CPU carries ~%.0f such channels\n",
              kClockHz / per_second);
  return 0;
}
