// Set-top box sizing example — the paper's opening motivation
// ("graphics/multimedia processing for high-end set-top boxes"): budget a
// complete digital-TV receiver on one MAJC-5200 using the Table 3 workload
// models and the dual-CPU split the chip was designed for.
//
//   $ ./settop_box
#include <cstdio>

#include "src/apps/workload.h"
#include "src/support/error.h"

using namespace majc;

int main() {
  std::printf("MAJC-5200 set-top box budget (two 500 MHz CPUs)\n\n");

  const auto rows = apps::run_all_apps();
  auto find = [&](const char* needle) -> const apps::AppResult& {
    for (const auto& r : rows) {
      if (r.name.find(needle) != std::string::npos) return r;
    }
    throw Error(std::string("missing row ") + needle);
  };

  const auto& video = find("MPEG-2");
  const auto& audio = find("AC-3");
  const auto& speech = find("G.728");  // return-channel voice

  std::printf("  %-34s %5.1f %% of a CPU\n", video.name.c_str(),
              100.0 * video.utilization);
  std::printf("  %-34s %5.1f %%\n", audio.name.c_str(),
              100.0 * audio.utilization);
  std::printf("  %-34s %5.1f %%  (return channel)\n", speech.name.c_str(),
              100.0 * speech.utilization);

  // On-screen graphics: a quarter-screen UI recomposited at 30 fps through
  // the color-conversion path (~4.5 cycles/pixel measured).
  const double ui = 360.0 * 240.0 * 30.0 * 4.5 / kClockHz;
  std::printf("  %-34s %5.1f %%  (360x240 UI @30fps)\n",
              "on-screen graphics compositing", 100.0 * ui);

  const double total =
      video.utilization + audio.utilization + speech.utilization + ui;
  std::printf("\n  total %.1f %% of one CPU -> %.1f %% of the chip\n",
              100.0 * total, 100.0 * total / 2.0);
  std::printf("  headroom for the GPP-driven 3D guide/game layer: %.1f %% of\n"
              "  a CPU plus the entire graphics preprocessor\n",
              100.0 * (2.0 - total) / 2.0 * 2.0 / 2.0);
  std::printf("\n(the paper's pitch: decode, audio, voice and UI fit one CPU\n"
              " with the second free for 3D — this budget reproduces it)\n");
  return 0;
}
