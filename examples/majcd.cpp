// majcd: long-running campaign-serving daemon over the farm engine.
//
// Accepts campaign jobs on a local (AF_UNIX) socket using the
// length-prefixed majc-req-v1 JSON protocol (DESIGN.md §14): named Table
// 1/2 kernels or inline assembly source, sim mode, functional backend,
// fault-seed matrix and JobPolicy. Campaigns run on the deterministic farm
// engine behind an admission queue with per-client quotas; compiled kernel
// images are content-addressed and shared across requests; every served
// campaign's final payload is byte-identical to what `majc_farm --json`
// writes for the same parameters.
//
//   $ ./majcd --socket=/tmp/majcd.sock --workers=2 --concurrency=2 &
//   $ ./majc_load --socket=/tmp/majcd.sock --connections=4 --requests=8
//   $ kill -TERM %1      # graceful drain: in-flight campaigns interrupted
//                        # via their RunControl drain tokens, exit 0
//
// SIGTERM/SIGINT drain semantics: stop accepting, answer queued requests
// with a structured `draining` error, interrupt executing campaigns at
// their next job/slice boundary, close, remove the socket, exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/serve/server.h"

using namespace majc;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: majcd [--socket=PATH] [--workers=N] [--concurrency=N]\n"
      "             [--queue=N] [--quota=N] [--max-request-bytes=N]\n"
      "             [--max-jobs=N] [--idle-timeout=SECS] [--quiet]\n");
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  serve::ServerConfig cfg;
  cfg.socket_path = "majcd.sock";
  cfg.verbose = true;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--socket=", 0) == 0) {
      cfg.socket_path = a.substr(9);
    } else if (a.rfind("--workers=", 0) == 0) {
      cfg.workers =
          static_cast<unsigned>(std::strtoul(a.c_str() + 10, nullptr, 10));
    } else if (a.rfind("--concurrency=", 0) == 0) {
      cfg.max_concurrent =
          static_cast<unsigned>(std::strtoul(a.c_str() + 14, nullptr, 10));
    } else if (a.rfind("--queue=", 0) == 0) {
      cfg.max_queue =
          static_cast<unsigned>(std::strtoul(a.c_str() + 8, nullptr, 10));
    } else if (a.rfind("--quota=", 0) == 0) {
      cfg.per_client_quota =
          static_cast<u32>(std::strtoul(a.c_str() + 8, nullptr, 10));
    } else if (a.rfind("--max-request-bytes=", 0) == 0) {
      cfg.max_request_bytes = std::strtoull(a.c_str() + 20, nullptr, 10);
    } else if (a.rfind("--max-jobs=", 0) == 0) {
      cfg.max_jobs_per_request = std::strtoull(a.c_str() + 11, nullptr, 10);
    } else if (a.rfind("--idle-timeout=", 0) == 0) {
      cfg.idle_timeout_secs = std::strtod(a.c_str() + 15, nullptr);
    } else if (a == "--quiet") {
      cfg.verbose = false;
    } else {
      return usage();
    }
  }

  // Block SIGTERM/SIGINT before any thread exists so every thread inherits
  // the mask; the main thread then sigwait()s for them — no async handler,
  // no signal-safety games, just a synchronous "now drain" event.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  if (pthread_sigmask(SIG_BLOCK, &sigs, nullptr) != 0) {
    std::perror("majcd: pthread_sigmask");
    return 1;
  }

  serve::Server server(cfg);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "majcd: %s\n", err.c_str());
    return 1;
  }

  int sig = 0;
  if (sigwait(&sigs, &sig) != 0) {
    std::fprintf(stderr, "majcd: sigwait failed\n");
    server.stop();
    return 1;
  }
  if (cfg.verbose) {
    std::fprintf(stderr, "majcd: received %s, draining\n",
                 sig == SIGTERM ? "SIGTERM" : "SIGINT");
  }
  server.begin_shutdown();
  server.stop();

  const serve::ServeStats s = server.stats();
  std::printf("majcd: served %llu campaign(s), %llu job(s); cache %llu "
              "hit(s) / %llu miss(es); %llu error repl(ies)\n",
              static_cast<unsigned long long>(s.campaigns_served),
              static_cast<unsigned long long>(s.jobs_served),
              static_cast<unsigned long long>(s.cache_hits),
              static_cast<unsigned long long>(s.cache_misses),
              static_cast<unsigned long long>(s.errors_sent));
  return 0;
}
