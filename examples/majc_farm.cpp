// majc_farm: deterministic parallel campaign runner.
//
// Executes a matrix of (kernel x sim-mode x fault-seed) jobs across host
// threads via the farm engine (src/farm/): each kernel is assembled and
// predecoded once and shared read-only by every worker, each worker reuses
// one resettable machine arena, and results aggregate in submission order —
// so the majc-farm-v1 JSON is byte-identical for any --jobs value.
//
//   $ ./majc_farm -j8                        # 16 kernels x 4 fault seeds
//   $ ./majc_farm -j1 --json=a.json
//   $ ./majc_farm -j8 --json=b.json          # cmp a.json b.json: identical
//   $ ./majc_farm --kernels=fir,idct --seeds=2 --mode=both
//   $ ./majc_farm --no-faults                # clean timing sweep instead
//   $ ./majc_farm --retries=3 --deadline-secs=5 --slice=65536
//
// The job matrix is expanded by farm::submit_matrix — the same canonical
// expansion the majcd daemon uses — so a campaign served over the socket
// protocol is byte-identical to this CLI's --json output for the same
// parameters (tests/test_serve.cpp pins this).
//
// Exit status: 0 when every job validated and halted; 1 otherwise, with a
// per-job failure digest (kernel, mode, seed, classified reason, attempts)
// on stderr so CI logs show *what* failed without re-running the campaign;
// 2 on usage errors, including a campaign matrix that expands to zero jobs.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/farm/campaign.h"
#include "src/farm/farm.h"
#include "src/kernels/kernel.h"
#include "src/kernels/table12.h"

using namespace majc;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: majc_farm [-jN | --jobs=N] [--kernels=a,b,...] [--seeds=N]\n"
      "                 [--seed=BASE] [--mode=cycle|functional|both]\n"
      "                 [--backend=interp|threaded]\n"
      "                 [--retries=N] [--deadline-secs=S] [--slice=PACKETS]\n"
      "                 [--backoff-us=N] [--no-faults] [--json=FILE]\n"
      "                 [--quiet]\n");
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  unsigned jobs = 0;  // 0 = hardware concurrency
  farm::MatrixSpec matrix;
  matrix.base_seed = 0x5eed50a4;
  u64 seeds = 4;
  bool quiet = false;
  std::string kernels_csv;
  const char* json_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<unsigned>(std::strtoul(a.c_str() + 7, nullptr, 10));
    } else if (a.size() > 2 && a[0] == '-' && a[1] == 'j') {
      jobs = static_cast<unsigned>(std::strtoul(a.c_str() + 2, nullptr, 10));
    } else if (a.rfind("--seed=", 0) == 0) {
      matrix.base_seed = std::strtoull(a.c_str() + 7, nullptr, 0);
    } else if (a.rfind("--seeds=", 0) == 0) {
      seeds = std::strtoull(a.c_str() + 8, nullptr, 10);
    } else if (a.rfind("--kernels=", 0) == 0) {
      kernels_csv = a.substr(10);
    } else if (a.rfind("--mode=", 0) == 0) {
      // Validate at the CLI boundary: a SimMode must never be constructed
      // from an unchecked string (sim_mode_name asserts on bad values).
      const std::string m = a.substr(7);
      matrix.mode_cycle = m == "cycle" || m == "both";
      matrix.mode_functional = m == "functional" || m == "both";
      if (!matrix.mode_cycle && !matrix.mode_functional) {
        std::fprintf(stderr,
                     "majc_farm: invalid --mode '%s' (expected cycle, "
                     "functional or both)\n",
                     m.c_str());
        return usage();
      }
    } else if (a.rfind("--backend=", 0) == 0) {
      // Same boundary rule as --mode: an ExecBackend is only ever built
      // from a validated string.
      const std::string b = a.substr(10);
      if (b == "interp") {
        matrix.backend = sim::ExecBackend::kInterp;
      } else if (b == "threaded") {
        matrix.backend = sim::ExecBackend::kThreaded;
      } else {
        std::fprintf(stderr,
                     "majc_farm: invalid --backend '%s' (expected interp or "
                     "threaded)\n",
                     b.c_str());
        return usage();
      }
    } else if (a.rfind("--retries=", 0) == 0) {
      matrix.policy.max_attempts = std::max(
          1u,
          static_cast<unsigned>(std::strtoul(a.c_str() + 10, nullptr, 10)));
    } else if (a.rfind("--deadline-secs=", 0) == 0) {
      matrix.policy.host_deadline_secs = std::strtod(a.c_str() + 16, nullptr);
    } else if (a.rfind("--slice=", 0) == 0) {
      matrix.policy.slice_packets = std::strtoull(a.c_str() + 8, nullptr, 10);
    } else if (a.rfind("--backoff-us=", 0) == 0) {
      matrix.policy.backoff_base_us =
          std::strtoull(a.c_str() + 13, nullptr, 10);
    } else if (a == "--no-faults") {
      matrix.faults = false;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a.rfind("--json=", 0) == 0) {
      json_path = argv[i] + 7;
    } else {
      return usage();
    }
  }

  // Select + compile kernels (once; shared by every worker).
  const std::vector<kernels::NamedKernel>& all = kernels::table12_kernels();
  std::vector<const kernels::NamedKernel*> selected;
  if (kernels_csv.empty()) {
    for (const kernels::NamedKernel& nk : all) selected.push_back(&nk);
  } else {
    for (const std::string& want : split_csv(kernels_csv)) {
      const kernels::NamedKernel* nk = kernels::find_table12_kernel(want);
      if (nk == nullptr) {
        std::fprintf(stderr, "majc_farm: unknown kernel '%s'\n", want.c_str());
        return 2;
      }
      selected.push_back(nk);
    }
  }

  farm::Engine eng;
  for (const kernels::NamedKernel* nk : selected) {
    eng.add_kernel(kernels::table12_spec(*nk));
  }

  for (u64 it = 0; it < seeds; ++it) matrix.iterations.push_back(it);
  farm::submit_matrix(eng, matrix);

  // An empty matrix (no kernels selected, or --seeds=0) is a usage error,
  // not a trivially successful campaign: exit 2 so a mis-built CI sweep
  // cannot pass green while running nothing (pinned by ctest
  // farm_empty_matrix).
  if (eng.jobs().empty()) {
    std::fprintf(stderr, "majc_farm: empty campaign matrix (no kernels or "
                         "--seeds=0)\n");
    return usage();
  }

  farm::CampaignStats stats;
  const std::vector<farm::JobResult> results = eng.run(jobs, &stats);

  u64 failures = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const farm::Job& job = eng.jobs()[i];
    const kernels::KernelRun& r = results[i].run;
    const bool ok = r.valid && r.halted;
    if (!ok) ++failures;
    if (!quiet || !ok) {
      std::printf("%-14s %-10s it=%llu %s  cycles %llu  digest %016llx%s%s\n",
                  eng.kernel(job.kernel).spec.name.c_str(),
                  farm::sim_mode_name(job.mode),
                  static_cast<unsigned long long>(job.iteration),
                  ok ? "ok " : "FAIL",
                  static_cast<unsigned long long>(r.total_cycles),
                  static_cast<unsigned long long>(r.arch_digest),
                  r.message.empty() ? "" : "  ", r.message.c_str());
    }
  }

  if (json_path != nullptr) {
    std::ofstream os(json_path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "majc_farm: cannot write %s\n", json_path);
      return 2;
    }
    farm::write_campaign_json(os, eng, results, matrix.base_seed);
  }

  std::printf(
      "farm: %zu jobs on %u workers in %.2fs  |  %.0f packets/s  %.2f MIPS  "
      "|  %llu failure(s)\n",
      results.size(), stats.workers, stats.wall_secs, stats.aggregate_pps,
      stats.aggregate_mips, static_cast<unsigned long long>(failures));
  if (failures == 0) return 0;

  // Failure digest: one stderr line per failed job so a red CI run shows
  // what broke (and whether retries/quarantine fired) without a re-run.
  std::fprintf(stderr, "majc_farm: %llu job(s) failed:\n",
               static_cast<unsigned long long>(failures));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const farm::JobResult& r = results[i];
    if (r.done && r.run.valid && r.run.halted) continue;
    const farm::Job& job = eng.jobs()[i];
    std::fprintf(
        stderr,
        "  #%zu %-14s %-10s seed=%llu class=%s reason=%s attempts=%u%s%s%s\n",
        i, eng.kernel(job.kernel).spec.name.c_str(),
        farm::sim_mode_name(job.mode),
        static_cast<unsigned long long>(job.cfg.faults.seed),
        farm::failure_class_name(r.failure),
        termination_reason_name(r.run.reason), r.attempts,
        r.quarantined ? " quarantined" : "",
        r.run.message.empty() ? "" : "  ", r.run.message.c_str());
  }
  return 1;
}
