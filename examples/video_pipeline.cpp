// Video decode pipeline example: run the Table 1 building blocks — VLD,
// IDCT and motion estimation — through the kernel API and report the
// macroblock budget of an MPEG-2-class decoder at 500 MHz, the paper's
// flagship application domain.
//
//   $ ./video_pipeline
#include <cstdio>

#include "src/kernels/idct.h"
#include "src/kernels/motion_est.h"
#include "src/kernels/vld.h"

using namespace majc;
using namespace majc::kernels;

int main() {
  std::printf("MAJC-5200 video building blocks (single CPU, cycle model)\n\n");

  const KernelRun vld = run_kernel(make_vld_spec());
  const KernelRun idct = run_kernel(make_idct_spec());
  const KernelRun me = run_kernel(make_motion_est_spec());
  for (const auto* r : {&vld, &idct, &me}) {
    if (!r->valid) {
      std::printf("kernel failed: %s\n", r->message.c_str());
      return 1;
    }
  }

  const double vld_sym = static_cast<double>(vld.kernel_cycles) / kVldSymbols;
  std::printf("VLD+IZZ+IQ : %5.1f cycles/symbol (%.1f Msymbols/s)\n", vld_sym,
              kClockHz / vld_sym / 1e6);
  std::printf("8x8 IDCT   : %5llu cycles/block\n",
              static_cast<unsigned long long>(idct.kernel_cycles));
  std::printf("Motion est : %5llu cycles/vector (log search, +/-16)\n",
              static_cast<unsigned long long>(me.kernel_cycles));

  // A 720x480 @ 30 fps stream: 40500 macroblocks/s, ~4 coded blocks and
  // ~60 symbols per macroblock.
  const double mb_cycles = 60.0 * vld_sym +
                           4.0 * static_cast<double>(idct.kernel_cycles) +
                           0.3 * static_cast<double>(me.kernel_cycles);
  const double mb_s = kClockHz / mb_cycles;
  std::printf("\nper-macroblock budget: %.0f cycles -> %.0f macroblocks/s\n",
              mb_cycles, mb_s);
  std::printf("MP@ML needs 40500 MB/s -> %.0f %% of one CPU\n",
              100.0 * 40500.0 / mb_s);
  return 0;
}
